"""Tests for snapshot schedules, the archive, and DZDB."""

import pytest

from repro.czds.archive import SnapshotArchive
from repro.czds.dzdb import DZDB, HistoricalRecord
from repro.czds.snapshot import SnapshotSchedule
from repro.errors import ConfigError
from repro.registry.policy import gtld
from repro.registry.registry import Registry, RegistryGroup
from repro.simtime.clock import DAY, HOUR, MINUTE, Window, utc


WINDOW = Window(utc(2023, 11, 1), utc(2023, 11, 15))


@pytest.fixture
def policy():
    return gtld("com", MINUTE, snapshot_offset=2 * HOUR,
                late_publication_prob=0.0)


@pytest.fixture
def schedule(policy):
    return SnapshotSchedule(policy, WINDOW)


class TestSnapshotSchedule:
    def test_daily_captures_with_lead_in(self, schedule):
        captures = schedule.capture_times()
        assert captures[0] < WINDOW.start          # baseline snapshot
        assert all(b - a == DAY for a, b in zip(captures, captures[1:]))
        assert captures[-1] < WINDOW.end

    def test_publication_trails_capture(self, schedule):
        for meta in schedule.metas():
            assert meta.publish_ts > meta.capture_ts
            assert meta.publication_delay >= 600

    def test_latest_published_progression(self, schedule):
        metas = schedule.metas()
        target = metas[3]
        assert schedule.latest_published(target.publish_ts - 1).capture_ts \
            < target.capture_ts
        assert schedule.latest_published(target.publish_ts).capture_ts \
            == target.capture_ts

    def test_nothing_published_before_first(self, schedule):
        assert schedule.latest_published(0) is None

    def test_late_files_never_shadow_newer(self):
        policy = gtld("top", MINUTE, late_publication_prob=0.5)
        schedule = SnapshotSchedule(policy, WINDOW)
        last_capture = -1
        for ts in range(WINDOW.start, WINDOW.end, 6 * HOUR):
            meta = schedule.latest_published(ts)
            if meta is not None:
                assert meta.capture_ts >= last_capture
                last_capture = meta.capture_ts

    def test_rapid_cadence(self, policy):
        rapid = SnapshotSchedule(policy, Window(WINDOW.start,
                                                WINDOW.start + DAY),
                                 interval=5 * MINUTE)
        captures = rapid.capture_times()
        assert len(captures) > 200

    def test_rejects_bad_interval(self, policy):
        with pytest.raises(ConfigError):
            SnapshotSchedule(policy, WINDOW, interval=0)

    def test_captures_between(self, schedule):
        day3 = WINDOW.start + 3 * DAY
        metas = schedule.captures_between(day3, day3 + DAY)
        assert len(metas) == 1

    def test_first_capture_at_or_after(self, schedule):
        meta = schedule.first_capture_at_or_after(WINDOW.start)
        assert meta.capture_ts >= WINDOW.start


def _build_group(policy):
    registry = Registry(policy)
    return registry, RegistryGroup([registry])


class TestSnapshotArchive:
    def _archive(self, policy):
        registry, group = _build_group(policy)
        archive = SnapshotArchive(group, WINDOW)
        return registry, archive

    def test_long_lived_domain_appears(self, policy):
        registry, archive = self._archive(policy)
        lc = registry.register("stable.com", WINDOW.start + HOUR, "GoDaddy",
                               ns_hosts=["ns1.h.net"])
        assert archive.appears_ever(lc)
        first = archive.first_appearance(lc)
        assert first > lc.zone_added_at

    def test_transient_domain_never_appears(self, policy):
        registry, archive = self._archive(policy)
        created = WINDOW.start + 3 * HOUR  # capture offset is 2h: just missed
        lc = registry.register("flash.com", created, "GoDaddy",
                               ns_hosts=["ns1.h.net"])
        registry.schedule_removal("flash.com", created + 2 * HOUR)
        assert not archive.appears_ever(lc)

    def test_is_zone_nrd_excludes_baseline(self, policy):
        registry, archive = self._archive(policy)
        old = registry.register("old.com", WINDOW.start - 30 * DAY, "GoDaddy",
                                ns_hosts=["ns1.h.net"])
        new = registry.register("new.com", WINDOW.start + HOUR, "GoDaddy",
                                ns_hosts=["ns1.h.net"])
        assert not archive.is_zone_nrd(old)
        assert archive.is_zone_nrd(new)

    def test_in_latest_published_tracks_publication(self, policy):
        registry, archive = self._archive(policy)
        lc = registry.register("pub.com", WINDOW.start + HOUR, "GoDaddy",
                               ns_hosts=["ns1.h.net"])
        schedule = archive.schedule("com")
        first_meta = next(m for m in schedule.metas()
                          if m.capture_ts >= lc.zone_added_at)
        assert not archive.in_latest_published("pub.com",
                                               first_meta.publish_ts - 1)
        assert archive.in_latest_published("pub.com", first_meta.publish_ts)

    def test_uncovered_tld_never_filters(self, policy):
        registry, group = _build_group(policy)
        archive = SnapshotArchive(group, WINDOW, covered_tlds=[])
        registry.register("x.com", WINDOW.start + HOUR, "GoDaddy",
                          ns_hosts=["ns1.h.net"])
        assert not archive.in_latest_published("x.com", WINDOW.end - 1)
        assert archive.covered_tlds == []

    def test_schedule_for_uncovered_raises(self, policy):
        _, group = _build_group(policy)
        archive = SnapshotArchive(group, WINDOW, covered_tlds=[])
        with pytest.raises(ConfigError):
            archive.schedule("com")

    def test_materialized_matches_analytic(self, policy):
        """The materialised snapshot files and the analytic membership
        oracle must agree exactly."""
        registry, archive = self._archive(policy)
        lc1 = registry.register("a.com", WINDOW.start + HOUR, "GoDaddy",
                                ns_hosts=["ns1.h.net"])
        lc2 = registry.register("b.com", WINDOW.start + 2 * DAY, "GoDaddy",
                                ns_hosts=["ns1.h.net"])
        registry.schedule_removal("a.com", WINDOW.start + 5 * DAY)
        versions = list(archive.materialize("com"))
        for meta, version in zip(archive.schedule("com").metas(), versions):
            for lc in (lc1, lc2):
                assert (lc.domain in version) == lc.in_zone_at(meta.capture_ts)

    def test_diff_sequence_extraction(self, policy):
        registry, archive = self._archive(policy)
        registry.register("base.com", WINDOW.start - 10 * DAY, "GoDaddy",
                          ns_hosts=["ns1.h.net"])
        registry.register("nrd.com", WINDOW.start + DAY, "GoDaddy",
                          ns_hosts=["ns1.h.net"])
        sequence = archive.diff_sequence("com")
        assert set(sequence.newly_registered()) == {"nrd.com"}


class TestDZDB:
    def test_observe_and_lookup(self):
        db = DZDB()
        db.observe("old.com", 1000)
        db.observe("old.com", 5000)
        record = db.lookup("old.com")
        assert record.first_seen == 1000 and record.last_seen == 5000
        assert "old.com" in db and len(db) == 1

    def test_registered_before(self):
        db = DZDB()
        db.add_interval("past.com", 1000, 2000)
        assert db.registered_before("past.com", 5000)
        assert not db.registered_before("past.com", 500)
        assert not db.registered_before("never.com", 5000)

    def test_coverage_of(self):
        db = DZDB()
        db.add_interval("a.com", 0, 10)
        assert db.coverage_of(["a.com", "b.com"], 100) == 0.5
        assert db.coverage_of([], 100) == 0.0

    def test_interval_widening(self):
        db = DZDB()
        db.add_interval("x.com", 2000, 3000)
        db.observe("x.com", 1000)
        assert db.lookup("x.com").first_seen == 1000

    def test_rejects_inverted_interval(self):
        with pytest.raises(ConfigError):
            HistoricalRecord("x.com", 100, 50)

    def test_span_days(self):
        assert HistoricalRecord("x.com", 0, 3 * DAY).span_days == 3
