"""Tests for repro.simtime.rng — determinism and stream isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime.rng import (
    RngStream,
    SeedBank,
    derive_seed,
    spawn,
    stable_bucket,
    stable_hash01,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_path_sensitive(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab")

    def test_master_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(7, "workload")
        b = RngStream(7, "workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_paths_diverge(self):
        a = RngStream(7, "workload")
        b = RngStream(7, "rdap")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_derivation(self):
        parent = RngStream(7, "a")
        child = parent.child("b")
        direct = RngStream(7, "a", "b")
        assert child.path == ("a", "b")
        assert [child.random() for _ in range(3)] == [
            direct.random() for _ in range(3)]

    def test_bernoulli_extremes(self):
        stream = RngStream(1, "t")
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(0.0) is False

    def test_bernoulli_rate(self):
        stream = RngStream(1, "t")
        hits = sum(stream.bernoulli(0.25) for _ in range(20000))
        assert 0.22 < hits / 20000 < 0.28

    def test_exponential_mean(self):
        stream = RngStream(1, "exp")
        mean = sum(stream.exponential(100.0) for _ in range(20000)) / 20000
        assert 90 < mean < 110

    def test_lognormal_median(self):
        stream = RngStream(1, "ln")
        samples = sorted(stream.lognormal_from_median(600, 0.9)
                         for _ in range(20001))
        median = samples[10000]
        assert 540 < median < 660

    def test_truncated_within_bounds(self):
        stream = RngStream(1, "tr")
        for _ in range(200):
            value = stream.truncated(lambda: stream.gauss(0, 100), -10, 10)
            assert -10 <= value <= 10

    def test_weighted_choice_respects_weights(self):
        stream = RngStream(1, "w")
        counts = {"a": 0, "b": 0}
        for _ in range(10000):
            counts[stream.weighted_choice(["a", "b"], [9, 1])] += 1
        assert counts["a"] > counts["b"] * 5

    def test_poisson_small_lambda_mean(self):
        stream = RngStream(1, "p")
        mean = sum(stream.poisson(3.0) for _ in range(10000)) / 10000
        assert 2.8 < mean < 3.2

    def test_poisson_large_lambda_mean(self):
        stream = RngStream(1, "p2")
        mean = sum(stream.poisson(200.0) for _ in range(2000)) / 2000
        assert 190 < mean < 210

    def test_poisson_zero(self):
        assert RngStream(1, "p3").poisson(0.0) == 0

    def test_zipf_rank_range(self):
        stream = RngStream(1, "z")
        ranks = [stream.zipf_rank(10) for _ in range(1000)]
        assert all(0 <= r < 10 for r in ranks)
        # Rank 0 must dominate rank 9.
        assert ranks.count(0) > ranks.count(9) * 2


class TestSeedBank:
    def test_memoises_streams(self):
        bank = SeedBank(7)
        assert bank.stream("a") is bank.stream("a")

    def test_fresh_streams_restart(self):
        bank = SeedBank(7)
        first = bank.fresh("x").random()
        again = bank.fresh("x").random()
        assert first == again

    def test_memoised_stream_advances(self):
        bank = SeedBank(7)
        first = bank.stream("x").random()
        second = bank.stream("x").random()
        assert first != second


class TestStableHash:
    def test_range(self):
        for text in ("a", "b", "example.com"):
            assert 0.0 <= stable_hash01(text) < 1.0

    def test_deterministic_across_calls(self):
        assert stable_hash01("example.com", "s") == stable_hash01("example.com", "s")

    def test_salt_changes_value(self):
        assert stable_hash01("x", "a") != stable_hash01("x", "b")

    def test_bucket_range(self):
        for i in range(100):
            assert 0 <= stable_bucket(f"d{i}.com", 16) < 16

    def test_bucket_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stable_bucket("x", 0)

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_bucket_stable_property(self, text):
        assert stable_bucket(text, 7) == stable_bucket(text, 7)

    def test_spawn_equivalent_to_stream(self):
        assert spawn(7, "q").random() == RngStream(7, "q").random()

    def test_bucket_distribution_roughly_uniform(self):
        counts = [0] * 8
        for i in range(8000):
            counts[stable_bucket(f"domain{i}.net", 8)] += 1
        assert min(counts) > 800  # expected 1000 each
