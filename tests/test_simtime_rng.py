"""Tests for repro.simtime.rng — determinism and stream isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime.rng import (
    CountingStream,
    RngStream,
    SeedBank,
    StreamBank,
    WeightedSampler,
    derive_seed,
    spawn,
    stable_bucket,
    stable_hash01,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_path_sensitive(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab")

    def test_master_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(7, "workload")
        b = RngStream(7, "workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_paths_diverge(self):
        a = RngStream(7, "workload")
        b = RngStream(7, "rdap")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_derivation(self):
        parent = RngStream(7, "a")
        child = parent.child("b")
        direct = RngStream(7, "a", "b")
        assert child.path == ("a", "b")
        assert [child.random() for _ in range(3)] == [
            direct.random() for _ in range(3)]

    def test_bernoulli_extremes(self):
        stream = RngStream(1, "t")
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(0.0) is False

    def test_bernoulli_rate(self):
        stream = RngStream(1, "t")
        hits = sum(stream.bernoulli(0.25) for _ in range(20000))
        assert 0.22 < hits / 20000 < 0.28

    def test_exponential_mean(self):
        stream = RngStream(1, "exp")
        mean = sum(stream.exponential(100.0) for _ in range(20000)) / 20000
        assert 90 < mean < 110

    def test_lognormal_median(self):
        stream = RngStream(1, "ln")
        samples = sorted(stream.lognormal_from_median(600, 0.9)
                         for _ in range(20001))
        median = samples[10000]
        assert 540 < median < 660

    def test_truncated_within_bounds(self):
        stream = RngStream(1, "tr")
        for _ in range(200):
            value = stream.truncated(lambda: stream.gauss(0, 100), -10, 10)
            assert -10 <= value <= 10

    def test_weighted_choice_respects_weights(self):
        stream = RngStream(1, "w")
        counts = {"a": 0, "b": 0}
        for _ in range(10000):
            counts[stream.weighted_choice(["a", "b"], [9, 1])] += 1
        assert counts["a"] > counts["b"] * 5

    def test_poisson_small_lambda_mean(self):
        stream = RngStream(1, "p")
        mean = sum(stream.poisson(3.0) for _ in range(10000)) / 10000
        assert 2.8 < mean < 3.2

    def test_poisson_large_lambda_mean(self):
        stream = RngStream(1, "p2")
        mean = sum(stream.poisson(200.0) for _ in range(2000)) / 2000
        assert 190 < mean < 210

    def test_poisson_zero(self):
        assert RngStream(1, "p3").poisson(0.0) == 0

    def test_zipf_rank_range(self):
        stream = RngStream(1, "z")
        ranks = [stream.zipf_rank(10) for _ in range(1000)]
        assert all(0 <= r < 10 for r in ranks)
        # Rank 0 must dominate rank 9.
        assert ranks.count(0) > ranks.count(9) * 2


class TestSeedBank:
    def test_memoises_streams(self):
        bank = SeedBank(7)
        assert bank.stream("a") is bank.stream("a")

    def test_fresh_streams_restart(self):
        bank = SeedBank(7)
        first = bank.fresh("x").random()
        again = bank.fresh("x").random()
        assert first == again

    def test_memoised_stream_advances(self):
        bank = SeedBank(7)
        first = bank.stream("x").random()
        second = bank.stream("x").random()
        assert first != second


class TestStableHash:
    def test_range(self):
        for text in ("a", "b", "example.com"):
            assert 0.0 <= stable_hash01(text) < 1.0

    def test_deterministic_across_calls(self):
        assert stable_hash01("example.com", "s") == stable_hash01("example.com", "s")

    def test_salt_changes_value(self):
        assert stable_hash01("x", "a") != stable_hash01("x", "b")

    def test_bucket_range(self):
        for i in range(100):
            assert 0 <= stable_bucket(f"d{i}.com", 16) < 16

    def test_bucket_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stable_bucket("x", 0)

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_bucket_stable_property(self, text):
        assert stable_bucket(text, 7) == stable_bucket(text, 7)

    def test_spawn_equivalent_to_stream(self):
        assert spawn(7, "q").random() == RngStream(7, "q").random()

    def test_bucket_distribution_roughly_uniform(self):
        counts = [0] * 8
        for i in range(8000):
            counts[stable_bucket(f"domain{i}.net", 8)] += 1
        assert min(counts) > 800  # expected 1000 each


class TestWeightedSampler:
    """The fast-path sampler must be bit-identical to random.choices."""

    @given(seed=st.integers(0, 2 ** 32),
           weights=st.lists(st.one_of(
               st.integers(min_value=0, max_value=1000),
               st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)),
               min_size=1, max_size=40),
           draws=st.integers(1, 50))
    @settings(max_examples=120, deadline=None)
    def test_pick_matches_random_choices(self, seed, weights, draws):
        from hypothesis import assume
        assume(sum(weights) > 0)
        items = list(range(len(weights)))
        sampler = WeightedSampler(items, weights)
        a = RngStream(seed, "sampler")
        b = RngStream(seed, "sampler")
        got = [sampler.pick(a) for _ in range(draws)]
        want = [b.choices(items, weights=weights, k=1)[0]
                for _ in range(draws)]
        assert got == want
        # Both consumed the same number of underlying draws.
        assert a.random() == b.random()

    @given(seed=st.integers(0, 2 ** 32),
           weights=st.lists(st.floats(min_value=0.001, max_value=10.0,
                                      allow_nan=False),
                            min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_weighted_choice_matches_random_choices(self, seed, weights):
        items = [f"item{i}" for i in range(len(weights))]
        a = RngStream(seed, "wc")
        b = RngStream(seed, "wc")
        got = [a.weighted_choice(items, weights) for _ in range(10)]
        want = [b.choices(list(items), weights=list(weights), k=1)[0]
                for _ in range(10)]
        assert got == want

    def test_from_pairs(self):
        sampler = WeightedSampler.from_pairs([("a", 1.0), ("b", 3.0)])
        rng = RngStream(7, "pairs")
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[sampler.pick(rng)] += 1
        assert counts["b"] > counts["a"]

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            WeightedSampler([], [])
        with pytest.raises(ValueError):
            WeightedSampler(["a"], [0.0])
        with pytest.raises(ValueError):
            WeightedSampler(["a", "b"], [1.0])

    def test_weighted_choice_rejects_zero_total(self):
        rng = RngStream(7, "zero")
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [0.0, 0.0])


class TestFastForward:
    """fast_forward(k) must land on exactly the post-k-draws state.

    This is the contract the multi-core world build stands on: a worker
    that fast-forwards the shared capick stream by the counting pass's
    offset must produce the same picks a serial build would have — for
    every draw kind the planner consumes.
    """

    @given(seed=st.integers(0, 2 ** 32), k=st.integers(0, 200),
           tail=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_random_kind_equals_discarded_draws(self, seed, k, tail):
        skipped = RngStream(seed, "ff").fast_forward(k)
        manual = RngStream(seed, "ff")
        for _ in range(k):
            manual.random()
        assert ([skipped.random() for _ in range(tail)]
                == [manual.random() for _ in range(tail)])

    @given(seed=st.integers(0, 2 ** 32), k=st.integers(0, 200),
           a=st.floats(-1e6, 1e6, allow_nan=False),
           b=st.floats(0.0, 1e6, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_uniform_kind_equals_discarded_uniforms(self, seed, k, a, b):
        skipped = RngStream(seed, "ffu").fast_forward(k, kind="uniform")
        manual = RngStream(seed, "ffu")
        for _ in range(k):
            manual.uniform(a, a + b)
        assert skipped.random() == manual.random()

    @given(seed=st.integers(0, 2 ** 32), k=st.integers(0, 200),
           population=st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_choice_kind_equals_discarded_choices(self, seed, k, population):
        skipped = RngStream(seed, "ffc").fast_forward(
            k, kind="choice", population=population)
        manual = RngStream(seed, "ffc")
        pool = list(range(population))
        for _ in range(k):
            manual.choice(pool)
        assert skipped.random() == manual.random()

    @given(seed=st.integers(0, 2 ** 32), k=st.integers(0, 200),
           mu=st.floats(-5.0, 10.0, allow_nan=False),
           sigma=st.floats(0.01, 3.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_lognormvariate_kind_equals_discarded_draws(self, seed, k,
                                                        mu, sigma):
        # Consumption of the normal-variate rejection loop is
        # independent of (mu, sigma), so the fast-forward need not know
        # the parameters the serial build used.
        skipped = RngStream(seed, "ffl").fast_forward(
            k, kind="lognormvariate")
        manual = RngStream(seed, "ffl")
        for _ in range(k):
            manual.lognormvariate(mu, sigma)
        assert skipped.random() == manual.random()

    def test_zero_is_a_noop(self):
        assert (RngStream(7, "z").fast_forward(0).random()
                == RngStream(7, "z").random())

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RngStream(7, "x").fast_forward(-1)
        with pytest.raises(ValueError):
            RngStream(7, "x").fast_forward(1, kind="gauss")
        with pytest.raises(ValueError):
            RngStream(7, "x").fast_forward(1, kind="choice", population=0)

    def test_weighted_sampler_pick_is_one_draw(self):
        # The capick contract: one WeightedSampler pick == one random()
        # draw, so counting picks counts fast-forward units.
        sampler = WeightedSampler(["a", "b", "c"], [0.2, 0.3, 0.5])
        picked = RngStream(7, "cap")
        for _ in range(25):
            sampler.pick(picked)
        assert picked.random() == RngStream(7, "cap").fast_forward(25).random()

    @given(seed=st.integers(0, 2 ** 32),
           counts=st.lists(st.integers(0, 40), min_size=1, max_size=12),
           kind=st.sampled_from(["random", "uniform", "choice",
                                 "lognormvariate"]))
    @settings(max_examples=60, deadline=None)
    def test_sharded_split_reproduces_serial_sequence(self, seed, counts,
                                                      kind):
        """The per-(tld, month) relayout contract: partition a shared
        stream's draws into per-shard counts, give every shard a FRESH
        stream fast-forwarded to its prefix-sum offset, and the
        concatenation of the shards' draws equals the serial sequence —
        for every fast-forwardable draw kind, any shard sizes, any
        shard count (the build's ~60 shards are one instance).
        """
        def draw(stream):
            if kind == "random":
                return stream.random()
            if kind == "uniform":
                return stream.uniform(2.0, 9.0)
            if kind == "choice":
                return stream.choice(list(range(17)))
            return stream.lognormvariate(1.0, 0.5)

        serial = RngStream(seed, "capick")
        expected = [draw(serial) for _ in range(sum(counts))]
        pieces = []
        offset = 0
        for count in counts:
            shard = RngStream(seed, "capick")
            shard.fast_forward(offset, kind=kind,
                               **({"population": 17}
                                  if kind == "choice" else {}))
            pieces.extend(draw(shard) for _ in range(count))
            offset += count
        assert pieces == expected


class TestCountingStream:
    def test_draw_identical_to_plain_stream(self):
        counting = CountingStream(7, "c")
        plain = RngStream(7, "c")
        got = [counting.random(), counting.choice([1, 2, 3]),
               counting.lognormvariate(0, 1), counting.randrange(100)]
        want = [plain.random(), plain.choice([1, 2, 3]),
                plain.lognormvariate(0, 1), plain.randrange(100)]
        assert got == want

    def test_counts_random_draws(self):
        stream = CountingStream(7, "c2")
        for _ in range(13):
            stream.random()
        stream.uniform(0, 1)
        assert stream.random_draws == 14

    def test_counts_getrandbits(self):
        stream = CountingStream(7, "c3")
        stream.getrandbits(8)
        stream.getrandbits(64)
        assert stream.getrandbits_draws == 2


class TestStreamBank:
    def test_seedbank_alias(self):
        assert SeedBank is StreamBank

    def test_fast_forward_matches_stream_method(self):
        jumped = StreamBank(7)
        jumped.fast_forward(("capick",), 17)
        walked = StreamBank(7)
        for _ in range(17):
            walked.stream("capick").random()
        assert jumped.stream("capick").random() == walked.stream("capick").random()

    def test_fast_forward_memoises_the_stream(self):
        bank = StreamBank(7)
        stream = bank.fast_forward(("x",), 3)
        assert bank.stream("x") is stream

    def test_adopt_installs_counting_stream(self):
        bank = StreamBank(7)
        counter = bank.adopt(CountingStream(7, "capick"), "capick")
        assert bank.stream("capick") is counter
        bank.stream("capick").random()
        assert counter.random_draws == 1


class TestStableHashMemo:
    def test_memo_returns_identical_values(self):
        # Same digest whether the (text, salt) pair is cold or memoised.
        first = stable_hash01("memo-domain.com", "saltx")
        again = stable_hash01("memo-domain.com", "saltx")
        assert first == again
        # Ground truth: one-shot blake2b over salt\x00text.
        import hashlib
        h = hashlib.blake2b(digest_size=8)
        h.update(b"saltx\x00memo-domain.com")
        assert first == int.from_bytes(h.digest(), "big") / 2.0 ** 64

    def test_bucket_stability(self):
        assert (stable_bucket("x.com", 16, "s")
                == stable_bucket("x.com", 16, "s"))
