"""Tests for resource records, RRsets, and RFC 1982 serial math."""

import pytest

from repro.dnscore.records import (
    MONITOR_QTYPES,
    RRSet,
    RRType,
    ResourceRecord,
    SOA,
    a_rrset,
    aaaa_rrset,
    ns_rrset,
    serial_add,
    serial_gt,
    soa_for_tld,
    summarize_rrsets,
)
from repro.errors import RecordError


class TestRRType:
    def test_parse(self):
        assert RRType.parse("ns") is RRType.NS
        assert RRType.parse(" A ") is RRType.A

    def test_parse_unknown(self):
        with pytest.raises(RecordError):
            RRType.parse("AXFR")

    def test_monitor_qtypes_match_paper(self):
        assert MONITOR_QTYPES == (RRType.A, RRType.AAAA, RRType.NS)


class TestResourceRecord:
    def test_normalises_owner(self):
        record = ResourceRecord("ExAmPle.COM.", RRType.A, "192.0.2.1")
        assert record.owner == "example.com"

    def test_normalises_target_hostnames(self):
        record = ResourceRecord("example.com", RRType.NS, "NS1.Example.NET.")
        assert record.rdata == "ns1.example.net"

    def test_txt_rdata_untouched(self):
        record = ResourceRecord("example.com", RRType.TXT, "v=spf1 -ALL")
        assert record.rdata == "v=spf1 -ALL"

    def test_rejects_negative_ttl(self):
        with pytest.raises(RecordError):
            ResourceRecord("example.com", RRType.A, "192.0.2.1", ttl=-1)

    def test_rejects_empty_rdata(self):
        with pytest.raises(RecordError):
            ResourceRecord("example.com", RRType.A, "")

    def test_text_roundtrip(self):
        record = ResourceRecord("example.com", RRType.NS, "ns1.host.net", 7200)
        assert ResourceRecord.from_text(record.to_text()) == record

    def test_from_text_rejects_garbage(self):
        with pytest.raises(RecordError):
            ResourceRecord.from_text("not a record")

    def test_from_text_rejects_bad_ttl(self):
        with pytest.raises(RecordError):
            ResourceRecord.from_text("example.com. soon IN A 192.0.2.1")

    def test_ordering_is_stable(self):
        a = ResourceRecord("a.com", RRType.A, "192.0.2.1")
        b = ResourceRecord("b.com", RRType.A, "192.0.2.1")
        assert sorted([b, a])[0] == a


class TestRRSet:
    def test_of_groups_records(self):
        rrset = ns_rrset("example.com", ["ns2.h.net", "ns1.h.net"])
        assert rrset.rdatas == frozenset({"ns1.h.net", "ns2.h.net"})
        assert len(rrset) == 2

    def test_rejects_empty(self):
        with pytest.raises(RecordError):
            RRSet.of([])

    def test_rejects_mixed_owner(self):
        records = [ResourceRecord("a.com", RRType.A, "192.0.2.1"),
                   ResourceRecord("b.com", RRType.A, "192.0.2.2")]
        with pytest.raises(RecordError):
            RRSet.of(records)

    def test_rejects_mixed_type(self):
        records = [ResourceRecord("a.com", RRType.A, "192.0.2.1"),
                   ResourceRecord("a.com", RRType.TXT, "hi")]
        with pytest.raises(RecordError):
            RRSet.of(records)

    def test_ttl_is_minimum(self):
        records = [ResourceRecord("a.com", RRType.A, "192.0.2.1", 300),
                   ResourceRecord("a.com", RRType.A, "192.0.2.2", 60)]
        assert RRSet.of(records).ttl == 60

    def test_builders(self):
        assert len(a_rrset("x.com", ["192.0.2.1", "192.0.2.2"])) == 2
        assert len(aaaa_rrset("x.com", ["2001:db8::1"])) == 1

    def test_summarize(self):
        records = [
            ResourceRecord("a.com", RRType.A, "192.0.2.1"),
            ResourceRecord("a.com", RRType.A, "192.0.2.2"),
            ResourceRecord("a.com", RRType.NS, "ns1.h.net"),
        ]
        rrsets = summarize_rrsets(records)
        assert [(s.owner, s.rtype, len(s)) for s in rrsets] == [
            ("a.com", RRType.A, 2), ("a.com", RRType.NS, 1)]


class TestSerialArithmetic:
    def test_add(self):
        assert serial_add(1, 1) == 2

    def test_add_wraps(self):
        assert serial_add(2 ** 32 - 1, 1) == 0

    def test_add_rejects_large_increment(self):
        with pytest.raises(RecordError):
            serial_add(0, 2 ** 31)

    def test_gt_simple(self):
        assert serial_gt(2, 1)
        assert not serial_gt(1, 2)

    def test_gt_wraparound(self):
        # Just past the wrap, the new serial is 'greater'.
        assert serial_gt(5, 2 ** 32 - 5)

    def test_gt_equal_is_false(self):
        assert not serial_gt(7, 7)


class TestSOA:
    def test_bump(self):
        soa = soa_for_tld("com", serial=10)
        assert soa.bump().serial == 11

    def test_bump_wraps(self):
        soa = soa_for_tld("com", serial=2 ** 32 - 1)
        assert soa.bump().serial == 0

    def test_rejects_out_of_range_serial(self):
        with pytest.raises(RecordError):
            SOA("m", "r", serial=2 ** 32)

    def test_record_roundtrip(self):
        soa = soa_for_tld("xyz", serial=99)
        record = soa.to_record("xyz")
        parsed = SOA.from_rdata(record.rdata)
        assert parsed == soa

    def test_from_rdata_rejects_short(self):
        with pytest.raises(RecordError):
            SOA.from_rdata("a. b. 1 2 3")

    def test_from_rdata_rejects_non_numeric(self):
        with pytest.raises(RecordError):
            SOA.from_rdata("a. b. one 2 3 4 5")
