"""Tests for the RFC 6962 Merkle tree, including proof properties."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ct.merkle import (
    MerkleTree,
    consistency_proof,
    inclusion_proof,
    leaf_hash,
    node_hash,
    root_of,
    verify_consistency,
    verify_inclusion,
)
from repro.errors import MerkleError


class TestHashing:
    def test_leaf_domain_separation(self):
        data = b"hello"
        assert leaf_hash(data) == hashlib.sha256(b"\x00" + data).digest()
        assert leaf_hash(data) != hashlib.sha256(data).digest()

    def test_node_hash(self):
        left, right = b"L" * 32, b"R" * 32
        assert node_hash(left, right) == hashlib.sha256(
            b"\x01" + left + right).digest()

    def test_empty_tree_root(self):
        assert root_of([]) == hashlib.sha256(b"").digest()

    def test_single_leaf_root(self):
        assert root_of([b"x"]) == leaf_hash(b"x")

    def test_rfc6962_structure_for_three(self):
        leaves = [b"a", b"b", b"c"]
        expected = node_hash(node_hash(leaf_hash(b"a"), leaf_hash(b"b")),
                             leaf_hash(b"c"))
        assert root_of(leaves) == expected


_LEAVES = st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=40)


class TestInclusionProofs:
    def test_known_small_tree(self):
        leaves = [b"a", b"b", b"c", b"d"]
        root = root_of(leaves)
        for i, leaf in enumerate(leaves):
            proof = inclusion_proof(leaves, i)
            assert verify_inclusion(leaf, i, len(leaves), proof, root)

    def test_bad_index_raises(self):
        with pytest.raises(MerkleError):
            inclusion_proof([b"a"], 1)

    def test_single_leaf_empty_proof(self):
        assert inclusion_proof([b"a"], 0) == []
        assert verify_inclusion(b"a", 0, 1, [], root_of([b"a"]))

    @given(_LEAVES, st.data())
    @settings(max_examples=120)
    def test_all_proofs_verify(self, leaves, data):
        index = data.draw(st.integers(0, len(leaves) - 1))
        root = root_of(leaves)
        proof = inclusion_proof(leaves, index)
        assert verify_inclusion(leaves[index], index, len(leaves), proof, root)

    @given(_LEAVES, st.data())
    @settings(max_examples=80)
    def test_tampered_leaf_fails(self, leaves, data):
        index = data.draw(st.integers(0, len(leaves) - 1))
        root = root_of(leaves)
        proof = inclusion_proof(leaves, index)
        assert not verify_inclusion(leaves[index] + b"!", index,
                                    len(leaves), proof, root)

    @given(_LEAVES, st.data())
    @settings(max_examples=80)
    def test_wrong_index_fails(self, leaves, data):
        if len(leaves) < 2:
            return
        index = data.draw(st.integers(0, len(leaves) - 2))
        root = root_of(leaves)
        proof = inclusion_proof(leaves, index)
        if leaves[index] != leaves[index + 1]:
            assert not verify_inclusion(leaves[index], index + 1,
                                        len(leaves), proof, root)

    def test_out_of_range_index_fails_verification(self):
        assert not verify_inclusion(b"a", 5, 2, [], root_of([b"a", b"b"]))


class TestConsistencyProofs:
    @given(_LEAVES, st.data())
    @settings(max_examples=120)
    def test_all_consistency_proofs_verify(self, leaves, data):
        old_size = data.draw(st.integers(1, len(leaves)))
        old_root = root_of(leaves[:old_size])
        new_root = root_of(leaves)
        proof = consistency_proof(leaves, old_size)
        assert verify_consistency(old_size, len(leaves), old_root,
                                  new_root, proof)

    @given(_LEAVES, st.data())
    @settings(max_examples=60)
    def test_forked_history_fails(self, leaves, data):
        if len(leaves) < 2:
            return
        old_size = data.draw(st.integers(1, len(leaves) - 1))
        proof = consistency_proof(leaves, old_size)
        fake_old_root = root_of(leaves[:old_size] + [b"forged"])
        assert not verify_consistency(old_size, len(leaves), fake_old_root,
                                      root_of(leaves), proof)

    def test_same_size_trivial(self):
        leaves = [b"a", b"b"]
        root = root_of(leaves)
        assert consistency_proof(leaves, 2) == []
        assert verify_consistency(2, 2, root, root, [])

    def test_bad_old_size_raises(self):
        with pytest.raises(MerkleError):
            consistency_proof([b"a"], 0)
        with pytest.raises(MerkleError):
            consistency_proof([b"a"], 2)

    def test_inverted_sizes_fail(self):
        assert not verify_consistency(3, 2, b"x", b"y", [])


class TestMerkleTree:
    def test_append_returns_indices(self):
        tree = MerkleTree()
        assert [tree.append(bytes([i])) for i in range(4)] == [0, 1, 2, 3]
        assert len(tree) == 4

    def test_root_matches_functional(self):
        tree = MerkleTree()
        leaves = [b"a", b"b", b"c"]
        for leaf in leaves:
            tree.append(leaf)
        assert tree.root() == root_of(leaves)

    def test_historical_roots(self):
        tree = MerkleTree()
        for leaf in (b"a", b"b", b"c"):
            tree.append(leaf)
        assert tree.root(2) == root_of([b"a", b"b"])

    def test_root_of_invalid_size(self):
        with pytest.raises(MerkleError):
            MerkleTree().root(3)

    def test_prove_through_tree(self):
        tree = MerkleTree()
        for i in range(10):
            tree.append(bytes([i]))
        proof = tree.prove_inclusion(4)
        assert verify_inclusion(bytes([4]), 4, 10, proof, tree.root())

    def test_consistency_through_tree(self):
        tree = MerkleTree()
        for i in range(7):
            tree.append(bytes([i]))
        old_root = tree.root(3)
        proof = tree.prove_consistency(3)
        assert verify_consistency(3, 7, old_root, tree.root(), proof)

    def test_leaf_access(self):
        tree = MerkleTree()
        tree.append(b"q")
        assert tree.leaf(0) == b"q"
        with pytest.raises(MerkleError):
            tree.leaf(1)
