"""Failure injection: the pipeline under degraded observation channels.

The paper's methodology section enumerates its own failure modes; these
tests verify the reproduction degrades the same way instead of merely
working on the happy path.
"""

import pytest

from repro.core.ctdetect import CTDetector
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.rdap_collect import RDAPCollector
from repro.ct.certstream import CertstreamFeed
from repro.dnscore.psl import BuggyPublicSuffixList, PublicSuffixList
from repro.registry.rdap import RDAPClient, RDAPFailure, RDAPServer
from repro.registry.registry import RegistryGroup
from repro.simtime.clock import DAY, HOUR


class TestCertstreamLoss:
    """Certstream is best-effort; dropped messages cost detections."""

    def test_drop_rate_reduces_candidates_proportionally(self, tiny_world):
        lossless = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        full = len(lossless.run(tiny_world.certstream))

        lossy_feed = CertstreamFeed(tiny_world.logs, drop_prob=0.5)
        lossy = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        degraded = len(lossy.run(lossy_feed))
        assert 0.35 < degraded / full < 0.65

    def test_total_loss_detects_nothing(self, tiny_world):
        dead_feed = CertstreamFeed(tiny_world.logs, drop_prob=1.0)
        detector = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        assert detector.run(dead_feed) == {}


class TestRDAPOutage:
    """§4.2: the pipeline must classify, not crash, when RDAP dies."""

    def _broken_client(self, world):
        client = RDAPClient(world.registries)
        for tld in world.registries.tlds():
            registry = world.registries.get(tld)
            client._servers[tld] = RDAPServer(registry, flaky_prob=1.0)
        return client

    def test_total_outage_fails_all_transients(self, tiny_world):
        from repro.core.ctdetect import CTDetector
        from repro.core.transient import TransientClassifier
        from repro.core.validate import Validator

        detector = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        candidates = detector.run(tiny_world.certstream)
        collector = RDAPCollector(tiny_world.registries,
                                  client=self._broken_client(tiny_world))
        rdap = collector.collect(candidates.values())
        assert all(not r.ok for r in rdap.values())
        assert all(r.failure is RDAPFailure.SERVER_ERROR
                   for r in rdap.values())

        verdicts = Validator().validate_all(candidates, rdap)
        breakdown = TransientClassifier(
            tiny_world.registries, tiny_world.archive).classify(
            candidates, verdicts)
        # With no RDAP, nothing can be confirmed: everything transient
        # lands in the failed bucket — graceful degradation.
        assert breakdown.confirmed == set()
        assert breakdown.rdap_failed == breakdown.candidates


class TestPSLDegradation:
    """§4.1 attributes part of Fig 1's tail to PSL misextraction."""

    def test_buggy_psl_changes_extraction_under_multilabel_suffixes(self):
        good, buggy = PublicSuffixList(), BuggyPublicSuffixList()
        assert good.registrable_domain("shop.example.co.uk") == "example.co.uk"
        assert buggy.registrable_domain("shop.example.co.uk") == "co.uk"

    def test_pipeline_accepts_custom_psl(self, tiny_world):
        result = run_pipeline(tiny_world,
                              PipelineConfig(psl=BuggyPublicSuffixList(),
                                             run_monitor=False))
        # Single-label gTLD world: candidate count must be unchanged.
        baseline = run_pipeline(tiny_world, PipelineConfig(run_monitor=False))
        assert set(result.candidates) == set(baseline.candidates)


class TestLatePublication:
    """Late zone files widen the step-1 candidate stream."""

    def test_late_files_create_stale_filter(self):
        from repro.czds.snapshot import SnapshotSchedule
        from repro.registry.policy import gtld
        from repro.simtime.clock import MINUTE, Window, utc

        window = Window(utc(2023, 11, 1), utc(2023, 11, 20))
        punctual = SnapshotSchedule(
            gtld("zz", MINUTE, late_publication_prob=0.0,
                 snapshot_offset=0), window)
        tardy = SnapshotSchedule(
            gtld("zz", MINUTE, late_publication_prob=1.0,
                 snapshot_offset=0), window)
        ts = utc(2023, 11, 10)
        fresh = punctual.latest_published(ts)
        stale = tardy.latest_published(ts)
        assert fresh is not None
        # With every file days late, the freshest available capture is
        # strictly older.
        assert stale is None or stale.capture_ts < fresh.capture_ts


class TestMonitorBlindSpots:
    def test_subprobe_lifetime_never_observed(self, small_world,
                                              small_result):
        """Domains whose delegation lived between probes have
        last_ns_ok=None yet are still transient candidates — the
        monitor degrades exactly like the paper's (footnote on lifetime
        estimation)."""
        unseen = [
            domain for domain in small_result.confirmed_transients
            if (report := small_result.monitors.get(domain)) is not None
            and not report.ever_resolved
        ]
        for domain in unseen:
            lifecycle = small_world.registries.find_lifecycle(domain)
            assert lifecycle is not None
            # Either never published, or published too briefly for the
            # 10-minute grid.
            if lifecycle.zone_added_at is not None:
                zone_life = (lifecycle.zone_removed_at
                             - lifecycle.zone_added_at)
                assert zone_life < 2 * 600
