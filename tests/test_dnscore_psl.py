"""Tests for the Public Suffix List implementation."""

import pytest

from repro.dnscore.psl import (
    BUILTIN_RULES,
    BuggyPublicSuffixList,
    PublicSuffixList,
    default_psl,
    registrable_domain,
)
from repro.errors import PSLError


@pytest.fixture(scope="module")
def psl():
    return PublicSuffixList()


class TestSuffixMatching:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"

    def test_multi_label_suffix(self, psl):
        assert psl.public_suffix("example.co.uk") == "co.uk"

    def test_longest_rule_wins(self, psl):
        # Both 'uk' ... no plain 'uk' rule, but 'co.uk' beats implicit.
        assert psl.suffix_length("a.b.co.uk") == 2

    def test_unknown_tld_implicit_rule(self, psl):
        assert psl.public_suffix("example.zz") == "zz"

    def test_wildcard_rule(self, psl):
        # '*.ck' makes 'anything.ck' a public suffix.
        assert psl.is_public_suffix("foo.ck")
        assert psl.registrable_domain("bar.foo.ck") == "bar.foo.ck"

    def test_exception_rule(self, psl):
        # '!www.ck' carves www.ck out of the wildcard.
        assert psl.registrable_domain("www.ck") == "www.ck"
        assert psl.registrable_domain("sub.www.ck") == "www.ck"

    def test_private_suffixes(self, psl):
        assert psl.registrable_domain("site.github.io") == "site.github.io"
        assert psl.registrable_domain("a.b.pages.dev") == "b.pages.dev"


class TestRegistrableDomain:
    @pytest.mark.parametrize("name,expected", [
        ("example.com", "example.com"),
        ("www.example.com", "example.com"),
        ("a.b.c.example.shop", "example.shop"),
        ("example.co.uk", "example.co.uk"),
        ("www.example.co.uk", "example.co.uk"),
        ("*.example.xyz", "example.xyz"),
        ("sub.domain.amsterdam.nl", "domain.amsterdam.nl"),
    ])
    def test_extraction(self, psl, name, expected):
        assert psl.registrable_domain(name) == expected

    def test_bare_suffix_raises(self, psl):
        with pytest.raises(PSLError):
            psl.registrable_domain("co.uk")

    def test_bare_tld_raises(self, psl):
        with pytest.raises(PSLError):
            psl.registrable_domain("com")

    def test_or_none_swallows_bad_names(self, psl):
        assert psl.registrable_or_none("com") is None
        assert psl.registrable_or_none("-bad-.com") is None
        assert psl.registrable_or_none("good.example.com") == "example.com"

    def test_split(self, psl):
        assert psl.split("www.example.co.uk") == ("example.co.uk", "co.uk")

    def test_module_level_helper(self):
        assert registrable_domain("www.example.com") == "example.com"

    def test_default_psl_is_singleton(self):
        assert default_psl() is default_psl()


class TestBuggyPSL:
    """The degraded PSL used to reproduce the paper's misextraction
    failure mode (§4.1's long tail)."""

    def test_loses_multilabel_rules(self):
        buggy = BuggyPublicSuffixList()
        # With co.uk missing, the registrable 'domain' becomes co.uk.
        assert buggy.registrable_domain("www.example.co.uk") == "co.uk"

    def test_single_label_rules_survive(self):
        buggy = BuggyPublicSuffixList()
        assert buggy.registrable_domain("www.example.com") == "example.com"

    def test_divergence_only_under_multilabel_suffixes(self):
        good, buggy = PublicSuffixList(), BuggyPublicSuffixList()
        for name in ("a.example.com", "b.example.xyz", "x.foo.shop"):
            assert good.registrable_domain(name) == buggy.registrable_domain(name)


class TestCustomRules:
    def test_add_rule(self):
        psl = PublicSuffixList(rules=["com"])
        psl.add_rule("co.test")
        assert psl.registrable_domain("x.y.co.test") == "y.co.test"

    def test_blank_rules_ignored(self):
        psl = PublicSuffixList(rules=["com", "", "  "])
        assert psl.registrable_domain("a.com") == "a.com"

    def test_builtin_rules_cover_paper_tlds(self):
        for tld in ("com", "xyz", "shop", "online", "bond", "top", "net",
                    "org", "site", "store", "fun", "nl"):
            assert tld in BUILTIN_RULES
