"""Tests for messages, the TTL cache, authorities, and the resolver."""

import pytest

from repro.dnscore.authserver import HostingAuthority, StaticAuthority, TLDAuthority
from repro.dnscore.cache import ResolverCache
from repro.dnscore.message import Query, RCode, noerror, nxdomain, servfail, timeout
from repro.dnscore.records import RRType, ResourceRecord
from repro.dnscore.resolver import CachingResolver, ResolverPool


class TestMessages:
    def test_query_normalises(self):
        assert Query("ExAmPle.Com", RRType.A).qname == "example.com"

    def test_exists_semantics(self):
        query = Query("a.com", RRType.AAAA)
        assert noerror(query, ()).exists            # NODATA still exists
        assert not nxdomain(query).exists
        assert not servfail(query).exists
        assert not timeout(query).exists

    def test_is_positive_needs_records(self):
        query = Query("a.com", RRType.A)
        assert not noerror(query, ()).is_positive
        record = ResourceRecord("a.com", RRType.A, "192.0.2.1")
        assert noerror(query, (record,)).is_positive

    def test_cached_copy_flags(self):
        query = Query("a.com", RRType.A)
        record = ResourceRecord("a.com", RRType.A, "192.0.2.1")
        cached = noerror(query, (record,)).cached_copy(served_at=5)
        assert cached.from_cache and not cached.authoritative
        assert cached.served_at == 5


class TestResolverCache:
    def _response(self, ttl=300):
        query = Query("a.com", RRType.A)
        return noerror(query, (ResourceRecord("a.com", RRType.A,
                                              "192.0.2.1", ttl),))

    def test_hit_within_ttl(self):
        cache = ResolverCache(max_ttl=60)
        cache.put(self._response(), now=0)
        hit = cache.get(Query("a.com", RRType.A), now=59)
        assert hit is not None and hit.from_cache

    def test_expires_at_capped_ttl(self):
        """Unbound's cache-max-ttl=60 (paper §3): a 300s record still
        expires after 60s."""
        cache = ResolverCache(max_ttl=60)
        cache.put(self._response(ttl=300), now=0)
        assert cache.get(Query("a.com", RRType.A), now=60) is None

    def test_respects_shorter_record_ttl(self):
        cache = ResolverCache(max_ttl=60)
        cache.put(self._response(ttl=10), now=0)
        assert cache.get(Query("a.com", RRType.A), now=11) is None

    def test_negative_caching(self):
        cache = ResolverCache(max_ttl=60)
        cache.put(nxdomain(Query("gone.com", RRType.A)), now=0)
        hit = cache.get(Query("gone.com", RRType.A), now=30)
        assert hit is not None and hit.rcode is RCode.NXDOMAIN

    def test_zero_ttl_not_cached(self):
        cache = ResolverCache(max_ttl=0)
        cache.put(self._response(), now=0)
        assert cache.get(Query("a.com", RRType.A), now=0) is None

    def test_lru_eviction(self):
        cache = ResolverCache(max_ttl=60, max_entries=2)
        for name in ("a.com", "b.com", "c.com"):
            query = Query(name, RRType.A)
            cache.put(noerror(query, (ResourceRecord(name, RRType.A,
                                                     "192.0.2.1"),)), now=0)
        assert len(cache) == 2
        assert cache.get(Query("a.com", RRType.A), now=1) is None
        assert cache.stats.evictions == 1

    def test_stats(self):
        cache = ResolverCache(max_ttl=60)
        cache.get(Query("a.com", RRType.A), now=0)
        cache.put(self._response(), now=0)
        cache.get(Query("a.com", RRType.A), now=1)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_expire_sweep(self):
        cache = ResolverCache(max_ttl=60)
        cache.put(self._response(), now=0)
        assert cache.expire(now=100) == 1
        assert len(cache) == 0


def _delegation_oracle(domain, ts):
    if domain == "alive.com" or (domain == "flaky.com" and ts < 100):
        return ["ns1.h.net", "ns2.h.net"]
    return None


class TestTLDAuthority:
    def test_answers_ns_for_delegated(self):
        auth = TLDAuthority("com", _delegation_oracle)
        response = auth.lookup(Query("alive.com", RRType.NS), ts=0)
        assert response.exists
        assert response.rdatas() == frozenset({"ns1.h.net", "ns2.h.net"})

    def test_nxdomain_after_removal(self):
        auth = TLDAuthority("com", _delegation_oracle)
        assert auth.lookup(Query("flaky.com", RRType.NS), 99).exists
        assert auth.lookup(Query("flaky.com", RRType.NS), 100).rcode is RCode.NXDOMAIN

    def test_refuses_foreign_zone(self):
        auth = TLDAuthority("com", _delegation_oracle)
        assert auth.lookup(Query("x.net", RRType.NS), 0).rcode is RCode.REFUSED

    def test_subdomain_resolves_registrable(self):
        auth = TLDAuthority("com", _delegation_oracle)
        response = auth.lookup(Query("www.alive.com", RRType.NS), 0)
        assert response.exists

    def test_soa_serial(self):
        auth = TLDAuthority("com", _delegation_oracle,
                            serial_oracle=lambda ts: 42)
        response = auth.lookup(Query("com", RRType.SOA), 0)
        assert "42" in response.records[0].rdata

    def test_counts_queries(self):
        auth = TLDAuthority("com", _delegation_oracle)
        auth.lookup(Query("alive.com", RRType.NS), 0)
        assert auth.queries_served == 1


class TestHostingAuthority:
    def test_answers_records(self):
        auth = HostingAuthority(
            record_oracle=lambda d, qt, ts: ("192.0.2.7",))
        response = auth.lookup(Query("a.com", RRType.A), 0)
        assert response.rdatas() == frozenset({"192.0.2.7"})

    def test_lame_times_out(self):
        auth = HostingAuthority(
            record_oracle=lambda d, qt, ts: ("192.0.2.7",),
            lameness_oracle=lambda d, ts: True)
        assert auth.lookup(Query("a.com", RRType.A), 0).rcode is RCode.TIMEOUT

    def test_unhosted_servfails(self):
        auth = HostingAuthority(record_oracle=lambda d, qt, ts: None)
        assert auth.lookup(Query("a.com", RRType.A), 0).rcode is RCode.SERVFAIL


class TestCachingResolver:
    def _resolver(self):
        resolver = CachingResolver(max_cache_ttl=60)
        resolver.register_tld_authority("com", TLDAuthority("com", _delegation_oracle))
        resolver.set_hosting_authority(HostingAuthority(
            record_oracle=lambda d, qt, ts: ("192.0.2.9",) if d == "alive.com" else None))
        return resolver

    def test_a_resolution_through_delegation(self):
        resolver = self._resolver()
        response = resolver.resolve_at(Query("alive.com", RRType.A), 0)
        assert response.rdatas() == frozenset({"192.0.2.9"})

    def test_a_for_removed_domain_is_nxdomain(self):
        resolver = self._resolver()
        response = resolver.resolve_at(Query("gone.com", RRType.A), 0)
        assert response.rcode is RCode.NXDOMAIN

    def test_cache_round_trip(self):
        resolver = self._resolver()
        resolver.resolve_at(Query("alive.com", RRType.A), 0)
        response = resolver.resolve_at(Query("alive.com", RRType.A), 30)
        assert response.from_cache
        assert resolver.stats.cache_hits == 1

    def test_cache_expiry_after_cap(self):
        resolver = self._resolver()
        resolver.resolve_at(Query("alive.com", RRType.A), 0)
        response = resolver.resolve_at(Query("alive.com", RRType.A), 600)
        assert not response.from_cache

    def test_unroutable_servfails(self):
        resolver = self._resolver()
        assert resolver.resolve_at(Query("x.net", RRType.A), 0).rcode is RCode.SERVFAIL

    def test_direct_authority_bypasses_cache(self):
        """The paper's NS liveness path: straight to the TLD authority."""
        resolver = self._resolver()
        first = resolver.query_authority_direct(Query("flaky.com", RRType.NS), 0)
        assert first.exists
        second = resolver.query_authority_direct(Query("flaky.com", RRType.NS), 150)
        assert second.rcode is RCode.NXDOMAIN  # a cache would have lied

    def test_lame_delegation_not_mistaken_for_deletion(self):
        """A/AAAA fail for a lame domain, but NS-direct still proves the
        delegation exists — §3 step 3's motivation."""
        resolver = CachingResolver()
        resolver.register_tld_authority(
            "com", TLDAuthority("com", lambda d, ts: ["ns1.h.net"]))
        resolver.set_hosting_authority(HostingAuthority(
            record_oracle=lambda d, qt, ts: ("192.0.2.1",),
            lameness_oracle=lambda d, ts: True))
        a_response = resolver.resolve_at(Query("lame.com", RRType.A), 0)
        ns_response = resolver.query_authority_direct(Query("lame.com", RRType.NS), 0)
        assert not a_response.is_positive
        assert ns_response.exists


class TestResolverPool:
    def test_sixteen_workers(self):
        assert len(ResolverPool()) == 16

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ResolverPool(size=0)

    def test_domain_pinning_is_stable(self):
        pool = ResolverPool(size=4)
        first = pool.resolver_for("example.com")
        assert all(pool.resolver_for("example.com") is first for _ in range(5))

    def test_static_authority(self):
        auth = StaticAuthority()
        auth.add("a.com", RRType.A, ["192.0.2.3"])
        assert auth.lookup(Query("a.com", RRType.A), 0).is_positive
        assert auth.lookup(Query("b.com", RRType.A), 0).rcode is RCode.NXDOMAIN
