"""Tests for repro.resilience — chaos with a fixed seed.

The load-bearing property of the whole layer: recovery must be
*invisible in the output*.  A build that loses workers, a scan whose
authorities melt down, a serve log with a torn tail — each must
produce byte-identical artefacts to the undisturbed run (world
fingerprint, salvaged records), differing only in the telemetry that
says what was survived.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feed import FeedRecord, PublicFeed, read_jsonl_records
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    ReproError,
    ResilienceError,
    SegmentCorruptionError,
    ShardRetryExhausted,
    WorkerCrashError,
)
from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    DecorrelatedJitterBackoff,
    ExponentialBackoff,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    get_resilience_metrics,
    make_backoff,
    reset_resilience_metrics,
)
from repro.scan import ScanConfig, ScanEngine
from repro.serve.segments import (
    SegmentedLog,
    decode_segment_line,
    encode_segment_line,
)
from repro.serve.server import FeedServer, FeedServerConfig
from repro.simtime.clock import HOUR, MINUTE
from repro.workload.scenario import (
    ScenarioConfig,
    build_world,
    world_fingerprint,
)

#: The tiny chaos world every determinism test rebuilds (cheap: ~1s).
TINY = dict(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
            include_cctld=False)
#: Fingerprint of the undisturbed TINY world (pinned by
#: test_determinism's goldens; recovery must reproduce it too).
#: Epoch 2: re-recorded for the per-(tld, month) stream relayout.
TINY_FINGERPRINT = "f43497fbdd28f526f290d8e71eaa881d"

#: TINY builds 3 TLDs x 3 months = 9 (tld, month) shards.
TINY_SHARDS = 9


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_resilience_metrics()
    yield
    reset_resilience_metrics()


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_cli_grammar(self):
        plan = FaultPlan.parse(
            "seed=9;worker.crash:rate=0.5,fires=1;"
            "scan.timeout:rate=0.1,target=com")
        assert plan.seed == 9
        assert [s.kind for s in plan.specs] == ["worker.crash",
                                                "scan.timeout"]
        assert plan.specs[0].rate == 0.5
        assert plan.specs[0].fires == 1
        assert plan.specs[1].target == "com"

    def test_parse_json(self):
        plan = FaultPlan.parse(json.dumps({
            "seed": 4,
            "faults": [{"kind": "log.torn_write", "rate": 1.0}]}))
        assert plan.seed == 4
        assert plan.wants("log.torn_write")
        assert not plan.wants("worker.crash")

    def test_parse_file(self, tmp_path):
        spec = tmp_path / "plan.json"
        spec.write_text(json.dumps(
            {"seed": 2, "faults": [{"kind": "worker.hang", "delay": 3}]}))
        plan = FaultPlan.parse(str(spec))
        assert plan.specs[0].delay == 3.0

    def test_parse_empty_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("worker.explode:rate=1.0")

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("worker.crash:rate=1.5")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("worker.crash:frequency=1")

    def test_all_kinds_parse(self):
        for kind in FAULT_KINDS:
            assert FaultPlan.parse(f"{kind}:rate=1.0").wants(kind)

    def test_fires_is_deterministic(self):
        plan_a = FaultPlan.parse("seed=5;scan.timeout:rate=0.3")
        plan_b = FaultPlan.parse("seed=5;scan.timeout:rate=0.3")
        schedule_a = [plan_a.fires("scan.timeout", f"d{i}.com") is not None
                      for i in range(200)]
        schedule_b = [plan_b.fires("scan.timeout", f"d{i}.com") is not None
                      for i in range(200)]
        assert schedule_a == schedule_b
        hits = sum(schedule_a)
        assert 30 < hits < 90  # ~60 expected at rate 0.3

    def test_different_seeds_differ(self):
        hit = {seed: [FaultPlan.parse(f"seed={seed};worker.crash:rate=0.5")
                      .fires("worker.crash", f"d{i}") is not None
                      for i in range(64)]
               for seed in (1, 2)}
        assert hit[1] != hit[2]

    def test_order_independent(self):
        """The draw depends only on the key, not on call history."""
        plan = FaultPlan.parse("seed=8;worker.crash:rate=0.5")
        keys = [f"shard{i}" for i in range(50)]
        forward = {k: plan.fires("worker.crash", k) is not None
                   for k in keys}
        plan2 = FaultPlan.parse("seed=8;worker.crash:rate=0.5")
        backward = {k: plan2.fires("worker.crash", k) is not None
                    for k in reversed(keys)}
        assert forward == backward

    def test_target_filter(self):
        plan = FaultPlan.parse("worker.crash:rate=1.0,target=com")
        assert plan.fires("worker.crash", "com", target="com") is not None
        assert plan.fires("worker.crash", "xyz", target="xyz") is None

    def test_fires_cap_limits_attempts(self):
        plan = FaultPlan.parse("worker.crash:rate=1.0,fires=1")
        assert plan.fires("worker.crash", "s", attempt=0) is not None
        assert plan.fires("worker.crash", "s", attempt=1) is None

    def test_time_window(self):
        plan = FaultPlan.parse("scan.servfail:rate=1.0,start=100,end=200")
        assert plan.fires("scan.servfail", "d", at=99) is None
        assert plan.fires("scan.servfail", "d", at=100) is not None
        assert plan.fires("scan.servfail", "d", at=200) is None


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    CFG = BreakerConfig(failure_threshold=3, cooldown=10.0,
                        half_open_probes=2)

    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(self.CFG)
        for t in range(3):
            assert br.allow(t)
            br.record_failure(t)
        assert br.state == "open"
        assert not br.allow(3)
        assert br.skipped == 1

    def test_success_resets_streak(self):
        br = CircuitBreaker(self.CFG)
        for t in range(10):
            assert br.allow(t)
            if t % 2:
                br.record_failure(t)
            else:
                br.record_success(t)
        assert br.state == "closed"

    def test_half_open_after_cooldown_then_close(self):
        br = CircuitBreaker(self.CFG)
        for t in range(3):
            br.record_failure(t)
        assert not br.allow(5)
        assert br.allow(13)  # cooldown of 10 elapsed since opened_at=2
        assert br.state == "half_open"
        br.record_success(13)
        assert br.allow(14)
        br.record_success(14)
        assert br.state == "closed"

    def test_half_open_failure_reopens(self):
        br = CircuitBreaker(self.CFG)
        for t in range(3):
            br.record_failure(t)
        assert br.allow(13)
        br.record_failure(13)
        assert br.state == "open"
        assert not br.allow(14)

    def test_half_open_admits_limited_probes(self):
        br = CircuitBreaker(self.CFG)
        for t in range(3):
            br.record_failure(t)
        assert br.allow(13)
        assert br.allow(13)
        assert not br.allow(13)  # only half_open_probes in flight

    def test_error_rate_trip(self):
        cfg = BreakerConfig(failure_threshold=100,
                            error_rate_threshold=0.5, window=10)
        br = CircuitBreaker(cfg)
        for t in range(20):
            br.record_failure(t) if t % 2 else br.record_success(t)
        assert br.state == "open"

    def test_transition_counts_and_hook(self):
        seen = []
        br = CircuitBreaker(self.CFG)
        br.on_transition = lambda old, new: seen.append((old, new))
        for t in range(3):
            br.record_failure(t)
        br.allow(13)
        br.record_failure(13)
        assert seen == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "open")]
        assert br.transitions == {"closed->open": 1, "open->half_open": 1,
                                  "half_open->open": 1}

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerConfig(error_rate_threshold=1.5)
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown=-1)

    @given(st.lists(st.sampled_from(["ok", "fail", "tick"]),
                    min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_state_machine_invariants(self, events):
        """Any drive sequence keeps the machine in a legal state."""
        cfg = BreakerConfig(failure_threshold=3, cooldown=5.0,
                            half_open_probes=2)
        br = CircuitBreaker(cfg)
        now = 0.0
        for event in events:
            now += 1.0
            if event == "tick":
                continue
            allowed = br.allow(now)
            assert br.state in ("closed", "open", "half_open")
            if br.state == "open":
                # An open breaker never admits traffic.
                assert not allowed
            if not allowed:
                continue
            if event == "fail":
                br.record_failure(now)
            else:
                br.record_success(now)
            # Closed-state bookkeeping never exceeds the trip threshold.
            if br.state == "closed":
                assert (br.consecutive_failures
                        < cfg.failure_threshold)
            assert 0 <= br.half_open_inflight <= cfg.half_open_probes
        total = sum(br.transitions.values())
        opens = br.transitions.get("closed->open", 0) + \
            br.transitions.get("half_open->open", 0)
        closes = br.transitions.get("half_open->closed", 0)
        halves = br.transitions.get("open->half_open", 0)
        assert total == opens + closes + halves


# ---------------------------------------------------------------------------
# Backoff policies
# ---------------------------------------------------------------------------

class TestBackoff:
    def test_exponential_matches_historical_expression(self):
        policy = ExponentialBackoff(600)
        for attempt in range(6):
            assert policy.delay(attempt, "d.com", "NS") == 600 * 2 ** attempt
            assert isinstance(policy.delay(attempt), int)

    def test_jitter_is_deterministic_per_key(self):
        a = DecorrelatedJitterBackoff(10.0, cap=300.0, seed=3)
        b = DecorrelatedJitterBackoff(10.0, cap=300.0, seed=3)
        chain_a = [a.delay(n, "d.com") for n in range(5)]
        chain_b = [b.delay(n, "d.com") for n in range(5)]
        assert chain_a == chain_b
        assert chain_a != [a.delay(n, "other.com") for n in range(5)]

    def test_jitter_bounds(self):
        policy = DecorrelatedJitterBackoff(10.0, cap=120.0, seed=1)
        for n in range(8):
            for key in ("x", "y", "z"):
                assert 10.0 <= policy.delay(n, key) <= 120.0

    def test_factory(self):
        assert isinstance(make_backoff("exponential", 5),
                          ExponentialBackoff)
        assert isinstance(make_backoff("decorrelated_jitter", 5, cap=60),
                          DecorrelatedJitterBackoff)
        with pytest.raises(ConfigError):
            make_backoff("fibonacci", 5)


# ---------------------------------------------------------------------------
# Supervised parallel build: chaos determinism
# ---------------------------------------------------------------------------

class TestSupervisedBuild:
    def _fingerprint(self, **overrides):
        config = ScenarioConfig(**{**TINY, **overrides})
        return world_fingerprint(build_world(config))

    def test_crash_recovery_reproduces_fingerprint(self):
        # Every (tld, month) shard's first attempt crashes; every
        # retry succeeds and the merged world is bit-identical.
        fp = self._fingerprint(
            parallel=4,
            fault_plan="seed=3;worker.crash:rate=1.0,fires=1")
        assert fp == TINY_FINGERPRINT
        snap = get_resilience_metrics().snapshot()
        assert snap["resilience_shard_retries_total"] == TINY_SHARDS
        assert (snap["resilience_worker_failures_total"]
                == {"crash": TINY_SHARDS})

    def test_poison_shard_serial_fallback(self):
        # Fault targets match shard labels ("tld:month"), so a glob
        # poisons all three monthly shards of one TLD.
        fp = self._fingerprint(
            parallel=2, max_shard_retries=1,
            fault_plan="seed=3;worker.crash:rate=1.0,target=xyz:*")
        assert fp == TINY_FINGERPRINT
        snap = get_resilience_metrics().snapshot()
        assert snap["resilience_serial_fallbacks_total"] == 3

    def test_single_shard_poison_falls_back_once(self):
        fp = self._fingerprint(
            parallel=2, max_shard_retries=1,
            fault_plan="seed=3;worker.crash:rate=1.0,target=com:2023-12")
        assert fp == TINY_FINGERPRINT
        snap = get_resilience_metrics().snapshot()
        assert snap["resilience_serial_fallbacks_total"] == 1

    def test_hang_deadline_reproduces_fingerprint(self):
        fp = self._fingerprint(
            parallel=2, shard_deadline=0.5,
            fault_plan="seed=3;worker.hang:rate=1.0,fires=1,"
                       "target=com:2023-11,delay=5")
        assert fp == TINY_FINGERPRINT
        snap = get_resilience_metrics().snapshot()
        assert snap["resilience_worker_failures_total"]["deadline"] >= 1

    def test_fallback_disabled_raises(self):
        with pytest.raises(ShardRetryExhausted):
            self._fingerprint(
                parallel=2, max_shard_retries=0, serial_fallback=False,
                fault_plan="seed=3;worker.crash:rate=1.0,target=com:*")

    def test_chaos_matches_committed_bench_fingerprint(self):
        """The acceptance gate: a crash-ridden --jobs 4 build at the
        canonical 1/500 point reproduces the committed perf-baseline
        fingerprint bit for bit."""
        baseline = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "BENCH_worldgen.json")
        committed = json.loads(baseline.read_text())
        world = build_world(ScenarioConfig(
            seed=committed["seed"], scale=1.0 / committed["inv_scale"],
            include_cctld=committed["include_cctld"], parallel=4,
            fault_plan="seed=3;worker.crash:rate=0.5,fires=1"))
        assert world_fingerprint(world) == committed["fingerprint"]

    def test_plan_string_coerced_by_config(self):
        config = ScenarioConfig(**TINY,
                                fault_plan="worker.crash:rate=0.5")
        assert isinstance(config.fault_plan, FaultPlan)

    def test_bad_retry_budget_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(**TINY, max_shard_retries=-1)


# ---------------------------------------------------------------------------
# Scan under storm
# ---------------------------------------------------------------------------

def _storm_engine(plan, **config_overrides):
    from repro.registry.policy import gtld
    from repro.registry.registry import Registry, RegistryGroup
    registry = Registry(gtld("com", MINUTE, snapshot_offset=0))
    starts = {}
    for i in range(12):
        domain = f"storm{i}.com"
        registry.register(domain, 1000 + i * 60, "GoDaddy",
                          ns_hosts=["ns1.h.net"], a_addrs=["192.0.2.1"])
        starts[domain] = 1000 + i * 60
    config = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR,
                        fault_plan=plan, **config_overrides)
    return ScanEngine(RegistryGroup([registry]), config), starts


class TestScanChaos:
    def test_servfail_storm_trips_breaker_and_completes(self):
        engine, starts = _storm_engine(
            "seed=2;scan.servfail:rate=1.0,target=com",
            breaker=BreakerConfig(failure_threshold=5, cooldown=3600))
        reports = engine.observe_all(starts)
        assert len(reports) == len(starts)
        snap = engine.snapshot()
        assert snap["breakers"]["com"]["state"] in ("open", "half_open")
        assert snap["breakers"]["com"]["transitions"]["closed->open"] >= 1
        assert get_resilience_metrics().snapshot()[
            "resilience_breaker_skips_total"] > 0

    def test_storm_run_is_reproducible(self):
        plan = "seed=6;scan.timeout:rate=0.4"
        engine_a, starts = _storm_engine(plan)
        engine_b, _ = _storm_engine(plan)
        reports_a = engine_a.observe_all(starts)
        reports_b = engine_b.observe_all(dict(starts))
        assert reports_a == reports_b
        assert (engine_a.metrics.probes_sent.value
                == engine_b.metrics.probes_sent.value)

    def test_no_plan_is_noop(self):
        engine_a, starts = _storm_engine(None)
        engine_b, _ = _storm_engine("")
        assert engine_a.observe_all(starts) == engine_b.observe_all(starts)

    def test_probe_deadline_bounds_retries(self):
        # Default backoff chain is 5s then 10s; a 6s budget admits the
        # first retry of each instant and refuses the second.
        engine, starts = _storm_engine(
            "seed=2;scan.timeout:rate=1.0",
            probe_deadline=6)
        engine.observe_all(starts)
        assert get_resilience_metrics().snapshot()[
            "resilience_deadline_exhausted_total"] > 0

    def test_jitter_backoff_policy_accepted(self):
        engine, starts = _storm_engine(
            "seed=2;scan.timeout:rate=0.5",
            backoff="decorrelated_jitter", backoff_cap=3600.0,
            backoff_seed=4)
        assert len(engine.observe_all(starts)) == len(starts)

    def test_unknown_backoff_rejected(self):
        with pytest.raises(ReproError):
            ScanConfig(backoff="fibonacci")


# ---------------------------------------------------------------------------
# Crash-safe segmented log
# ---------------------------------------------------------------------------

def _records(n, start_ts=1000):
    return [FeedRecord(domain=f"d{i}.example", tld="example",
                       seen_at=start_ts + i * 10, source="zone")
            for i in range(n)]


def _write_log(directory, n=40, max_segment_records=8):
    log = SegmentedLog(max_segment_records=max_segment_records,
                       directory=directory)
    for record in _records(n):
        log.append(record)
    log.roll()
    return log


class TestSegmentLineCodec:
    def test_round_trip(self):
        line = encode_segment_line('{"a":1}')
        assert decode_segment_line(line) == '{"a":1}'

    def test_corruption_detected(self):
        line = encode_segment_line('{"a":1}')
        with pytest.raises(SegmentCorruptionError):
            decode_segment_line(line.replace('1', '2', 1))

    def test_legacy_line_passthrough(self):
        assert decode_segment_line('{"a":1}') == '{"a":1}'


class TestTornTailRecovery:
    def test_random_truncation_never_loses_complete_records(self, tmp_path):
        """The acceptance property: for ANY truncation point, load()
        never raises and salvages every record whose line survived."""
        rng = random.Random(1234)
        for trial in range(25):
            directory = tmp_path / f"trial{trial}"
            _write_log(directory, n=40)
            files = sorted(directory.glob("segment-*.jsonl"))
            victim = rng.choice(files)
            data = victim.read_bytes()
            cut = rng.randrange(1, len(data))
            victim.write_bytes(data[:cut])
            complete_lines = sum(
                1 for f in sorted(directory.glob("segment-*.jsonl"))
                for line in f.read_bytes().split(b"\n")
                if line.endswith(b"}") or (line and b"\t" in line
                                           and len(line.rpartition(b"\t")[2])
                                           == 8))
            log = SegmentedLog.load(directory)
            recovered = list(log.iter_records())
            # Upper bound: all originally written records.
            assert len(recovered) <= 40
            # Every record the reader reports is genuine and ordered.
            assert recovered == sorted(recovered,
                                       key=lambda r: r.seen_at)
            assert log.stats()["torn_lines"] >= 0
            # Reload after repair is clean and identical.
            log2 = SegmentedLog.load(directory)
            assert list(log2.iter_records()) == recovered
            assert log2.stats()["torn_lines"] == 0

    def test_torn_tail_salvages_prefix(self, tmp_path):
        _write_log(tmp_path, n=16, max_segment_records=100)
        path = sorted(tmp_path.glob("segment-*.jsonl"))[0]
        lines = path.read_text().splitlines(keepends=True)
        # Keep 10 clean lines, then a torn half-line.
        path.write_text("".join(lines[:10]) + lines[10][:15])
        log = SegmentedLog.load(tmp_path)
        assert len(list(log.iter_records())) == 10
        stats = log.stats()
        assert stats["torn_lines"] == 1
        assert stats["records_salvaged"] == 10
        sidecars = list(tmp_path.glob("*.torn"))
        assert len(sidecars) == 1

    def test_offsets_contiguous_after_salvage(self, tmp_path):
        _write_log(tmp_path, n=40, max_segment_records=8)
        files = sorted(tmp_path.glob("segment-*.jsonl"))
        data = files[1].read_text().splitlines(keepends=True)
        files[1].write_text("".join(data[:3]) + data[3][:10])
        log = SegmentedLog.load(tmp_path)
        records = list(log.iter_records())
        # read() from every offset agrees with the full iteration.
        assert log.read(log.start_offset, max_records=1000) == records
        assert len(records) == log.end_offset - log.start_offset

    def test_injected_torn_write_round_trip(self, tmp_path):
        log = SegmentedLog(max_segment_records=8, directory=tmp_path,
                           fault_plan="seed=5;log.torn_write:rate=0.7")
        for record in _records(32):
            log.append(record)
        log.roll()
        assert get_resilience_metrics().snapshot()[
            "resilience_faults_injected_total"]["log.torn_write"] > 0
        recovered = SegmentedLog.load(tmp_path)
        stats = recovered.stats()
        assert stats["torn_lines"] > 0
        assert stats["records_salvaged"] > 0
        assert list(recovered.iter_records())  # prefix survived


# ---------------------------------------------------------------------------
# Serve: load shedding and stalled consumers
# ---------------------------------------------------------------------------

class TestServeResilience:
    def _server(self, **config_overrides):
        server = FeedServer(config=FeedServerConfig(**config_overrides))
        server.subscribe("paid", tier="premium")
        server.subscribe("mid", tier="standard")
        server.subscribe("free-a", tier="free")
        server.subscribe("free-b", tier="free")
        return server

    def test_shedding_drops_lowest_tier_first(self):
        server = self._server(shed_pending_threshold=10)
        shed_order = []
        original = server.unsubscribe

        def spy(client_id):
            shed_order.append(client_id)
            original(client_id)
        server.unsubscribe = spy
        for i in range(6):
            server.ingest(FeedRecord(domain=f"d{i}.com", tld="com",
                                     seen_at=100 + i, source="zone"))
        assert shed_order  # threshold was crossed
        tiers = {"free-a": "free", "free-b": "free",
                 "mid": "standard", "paid": "premium"}
        ranks = [("free", "standard", "premium").index(tiers[c])
                 for c in shed_order]
        assert ranks == sorted(ranks)
        assert "paid" not in shed_order  # premium sheds last
        assert server.metrics.shed_clients.value == len(shed_order)

    def test_no_threshold_no_shedding(self):
        server = self._server()
        for i in range(50):
            server.ingest(FeedRecord(domain=f"d{i}.com", tld="com",
                                     seen_at=100 + i, source="zone"))
        assert server.client_count == 4
        assert server.snapshot()["shed_total"] == 0

    def test_stalled_consumer_keeps_backlog(self):
        server = self._server(
            fault_plan="seed=1;serve.stall:rate=1.0,target=free-a,"
                       "start=0,end=200")
        for i in range(5):
            server.ingest(FeedRecord(domain=f"d{i}.com", tld="com",
                                     seen_at=100 + i, source="zone"))
        assert server.poll("free-a", 150) == []
        assert server.fanout.pending("free-a") == 5
        assert len(server.poll("mid", 150)) == 5
        # Past the plan window the stall lifts and the backlog drains.
        assert len(server.poll("free-a", 300)) == 5


# ---------------------------------------------------------------------------
# Feed archive quarantine
# ---------------------------------------------------------------------------

class TestFeedQuarantine:
    def _archive(self, tmp_path):
        good = [FeedRecord(domain=f"q{i}.com", tld="com",
                           seen_at=50 + i).to_json() for i in range(3)]
        path = tmp_path / "feed.jsonl"
        path.write_text("\n".join([good[0], "{torn", good[1],
                                   "garbage", good[2]]) + "\n")
        return path

    def test_rejects_sidecar_written(self, tmp_path):
        path = self._archive(tmp_path)
        feed = PublicFeed.from_jsonl(path)
        assert len(feed) == 3
        assert feed.load_errors == 2
        sidecar = tmp_path / "feed.jsonl.rejects"
        assert sidecar.read_text().splitlines() == ["{torn", "garbage"]
        assert get_resilience_metrics().snapshot()[
            "resilience_rejected_lines_total"] == 2

    def test_quarantine_opt_out(self, tmp_path):
        path = self._archive(tmp_path)
        records, skipped = read_jsonl_records(path, quarantine=False)
        assert (len(records), skipped) == (3, 2)
        assert not (tmp_path / "feed.jsonl.rejects").exists()

    def test_server_replay_surfaces_count(self, tmp_path):
        path = self._archive(tmp_path)
        server = FeedServer(config=FeedServerConfig())
        assert server.replay(path) == 3
        assert server.replay_skipped == 2


# ---------------------------------------------------------------------------
# Error taxonomy and exit codes
# ---------------------------------------------------------------------------

class TestErrorContract:
    def test_hierarchy(self):
        for exc in (WorkerCrashError, ShardRetryExhausted,
                    CircuitOpenError, SegmentCorruptionError):
            assert issubclass(exc, ResilienceError)
            assert issubclass(exc, ReproError)

    def test_bad_fault_plan_exits_2(self):
        from repro.cli import main
        assert main(["reproduce", "--fault-plan", "no.such.fault:rate=1",
                     "--scale", "5000"]) == 2

    def test_bad_plan_in_bench_world_config(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(**TINY, fault_plan="seed=x;worker.crash")


# ---------------------------------------------------------------------------
# Bench artifact durability
# ---------------------------------------------------------------------------

class TestBenchArtifactDurability:
    def _conftest(self):
        import importlib.util
        path = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_write_baseline_atomic(self, tmp_path, monkeypatch):
        bench = self._conftest()
        monkeypatch.setattr(bench, "BASELINE_DIR", tmp_path)
        path = bench.write_baseline("demo", {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert not list(tmp_path.glob("*.tmp"))

    def test_append_trend_atomic_and_appending(self, tmp_path, monkeypatch):
        bench = self._conftest()
        monkeypatch.setattr(bench, "TREND_PATH", tmp_path / "TREND.jsonl")
        bench.append_trend({"run": 1})
        bench.append_trend({"run": 2})
        lines = (tmp_path / "TREND.jsonl").read_text().splitlines()
        assert [json.loads(l)["run"] for l in lines] == [1, 2]
        assert not list(tmp_path.glob("*.tmp"))

    def test_append_trend_repairs_missing_newline(self, tmp_path,
                                                  monkeypatch):
        bench = self._conftest()
        trend = tmp_path / "TREND.jsonl"
        trend.write_text('{"run": 0}')  # torn: no trailing newline
        monkeypatch.setattr(bench, "TREND_PATH", trend)
        bench.append_trend({"run": 1})
        lines = trend.read_text().splitlines()
        assert [json.loads(l)["run"] for l in lines] == [0, 1]
