"""Tests for blocklists, the NOD feed, and ground-truth labelling."""

import pytest

from repro.intel.blocklist import Blocklist, BlocklistPanel, DEFAULT_BLOCKLISTS
from repro.intel.nod import NODConfig, NODFeed
from repro.registry.lifecycle import AbuseKind, DomainLifecycle
from repro.simtime.clock import DAY, HOUR, Window, utc
from repro.simtime.rng import RngStream


def make_lifecycle(domain="bad.com", created=utc(2023, 11, 10),
                   lifetime=None, malicious=True,
                   kind=AbuseKind.PHISHING, zone_added_delta=60):
    lc = DomainLifecycle(
        domain=domain, tld=domain.rsplit(".", 1)[1], registrar="GoDaddy",
        created_at=created, zone_added_at=created + zone_added_delta,
        removed_at=None if lifetime is None else created + lifetime,
        zone_removed_at=None if lifetime is None else created + lifetime + 60,
        is_malicious=malicious, abuse_kind=kind if malicious else None)
    lc.ns_timeline.set(created + zone_added_delta, frozenset({"ns1.h.net"}))
    return lc


class TestBlocklist:
    def test_benign_never_flagged(self):
        panel = BlocklistPanel(seed=1)
        lc = make_lifecycle(malicious=False)
        assert panel.entries_for(lc) == []
        assert not panel.is_flagged(lc)

    def test_kind_affinity(self):
        phish_list = DEFAULT_BLOCKLISTS[1]  # PhishTank
        assert phish_list.coverage_for(AbuseKind.PHISHING) > 0
        assert phish_list.coverage_for(AbuseKind.MALWARE) == 0
        assert phish_list.coverage_for(None) == 0

    def test_deterministic(self):
        lc = make_lifecycle()
        a = BlocklistPanel(seed=9).entries_for(lc)
        b = BlocklistPanel(seed=9).entries_for(lc)
        assert a == b

    def test_seed_changes_outcomes(self):
        lifecycles = [make_lifecycle(domain=f"bad{i}.com", lifetime=20 * DAY)
                      for i in range(300)]
        flags_a = sum(BlocklistPanel(seed=1).is_flagged(lc)
                      for lc in lifecycles)
        flags_b = sum(BlocklistPanel(seed=2).is_flagged(lc)
                      for lc in lifecycles)
        assert flags_a != flags_b

    def test_flag_rate_for_long_lived_malicious(self):
        """A slow-takedown malicious population should see ~13 % flagged
        (which × 50 % malicious share gives the paper's 6.6 %)."""
        panel = BlocklistPanel(seed=3)
        lifecycles = [make_lifecycle(domain=f"m{i}.com", lifetime=15 * DAY,
                                     kind=list(AbuseKind)[i % 4])
                      for i in range(2000)]
        rate = sum(panel.is_flagged(lc) for lc in lifecycles) / 2000
        assert 0.07 < rate < 0.20

    def test_transients_flagged_less_and_late(self):
        panel = BlocklistPanel(seed=3)
        transients = [make_lifecycle(domain=f"t{i}.com", lifetime=5 * HOUR,
                                     kind=list(AbuseKind)[i % 4])
                      for i in range(3000)]
        flagged = [panel.first_flag(lc) for lc in transients]
        flagged = [(lc, entry) for lc, entry in zip(transients, flagged)
                   if entry is not None]
        rate = len(flagged) / len(transients)
        assert 0.01 < rate < 0.12
        post = sum(1 for lc, entry in flagged
                   if entry.flagged_at >= lc.removed_at)
        assert post / len(flagged) > 0.7  # overwhelmingly post-mortem

    def test_flags_quantised_to_daily_poll(self):
        panel = BlocklistPanel(seed=3)
        for lc in (make_lifecycle(domain=f"q{i}.com", lifetime=20 * DAY)
                   for i in range(500)):
            for entry in panel.entries_for(lc):
                if entry.flagged_at > lc.created_at:
                    assert entry.flagged_at % DAY == 12 * HOUR

    def test_window_bounds_flags(self):
        tight = Window(utc(2023, 11, 1), utc(2023, 11, 2))
        panel = BlocklistPanel(seed=3, window=tight)
        lifecycles = [make_lifecycle(domain=f"w{i}.com", lifetime=30 * DAY)
                      for i in range(200)]
        for lc in lifecycles:
            for entry in panel.entries_for(lc):
                assert entry.flagged_at < tight.end

    def test_panel_has_ten_lists(self):
        assert len(DEFAULT_BLOCKLISTS) == 10
        names = {bl.name for bl in DEFAULT_BLOCKLISTS}
        assert {"DBL", "PhishTank", "OpenPhish", "VXVault"} <= names


class TestNODFeed:
    def test_never_published_invisible(self):
        feed = NODFeed()
        lc = make_lifecycle()
        object.__setattr__ if False else setattr(lc, "zone_added_at", None)
        assert not feed.detects(lc, ct_detected=True)
        assert feed.first_seen(lc) is None

    def test_deterministic_per_domain(self):
        feed = NODFeed()
        lc = make_lifecycle(lifetime=30 * DAY)
        assert feed.detects(lc, True) == feed.detects(lc, True)

    def test_conditional_rates(self):
        feed = NODFeed()
        lifecycles = [make_lifecycle(domain=f"n{i}.com", lifetime=None)
                      for i in range(3000)]
        with_ct = sum(feed.detects(lc, True) for lc in lifecycles) / 3000
        without_ct = sum(feed.detects(lc, False) for lc in lifecycles) / 3000
        assert 0.70 < with_ct < 0.85       # p_nrd_given_ct = 0.77
        assert 0.14 < without_ct < 0.26    # p_nrd_given_no_ct = 0.20

    def test_first_seen_within_live_interval(self):
        feed = NODFeed()
        for i in range(500):
            lc = make_lifecycle(domain=f"f{i}.com", lifetime=6 * HOUR)
            first = feed.first_seen(lc)
            if first is not None:
                assert lc.zone_added_at <= first < lc.zone_removed_at

    def test_feed_for_day_filters_by_creation(self):
        feed = NODFeed(NODConfig(p_nrd_given_ct=1.0, p_nrd_given_no_ct=1.0))
        day = utc(2023, 11, 10)
        on_day = make_lifecycle(domain="onday.com", created=day + HOUR)
        off_day = make_lifecycle(domain="offday.com", created=day + 2 * DAY)
        result = feed.feed_for_day([on_day, off_day], day, ct_detected=set())
        assert "onday.com" in result
        assert "offday.com" not in result

    def test_transient_class_probabilities(self):
        feed = NODFeed()
        transients = [make_lifecycle(domain=f"t{i}.com", lifetime=8 * HOUR)
                      for i in range(3000)]
        rate_ct = sum(feed.detects(lc, True, transient_class=True)
                      for lc in transients) / 3000
        assert 0.35 < rate_ct < 0.55  # p_transient_given_ct = 0.52 minus squeeze


class TestGroundTruthLabels:
    def test_populations_disjoint(self, small_world):
        truth = small_world.ground_truth
        transients = {lc.domain for lc in truth.true_transients()}
        early = {lc.domain for lc in truth.early_removed()}
        assert not transients & early

    def test_transients_never_in_archive(self, small_world):
        truth = small_world.ground_truth
        for lc in truth.true_transients()[:50]:
            assert not small_world.archive.covers(lc.tld) or \
                not small_world.archive.appears_ever(lc)

    def test_zone_nrds_all_in_window(self, small_world):
        truth = small_world.ground_truth
        for lc in truth.zone_nrds()[:200]:
            assert lc.created_at in small_world.window

    def test_cctld_registry_view_consistency(self, small_world):
        view = small_world.ground_truth.cctld_registry_view(
            small_world.cctld_tld)
        assert view["never_in_snapshots"] <= view["deleted_under_24h"]
        assert view["deleted_under_24h"] <= view["registrations"]

    def test_counts_by_tld_sum(self, small_world):
        truth = small_world.ground_truth
        by_tld = truth.transient_counts_by_tld()
        assert sum(by_tld.values()) == len(truth.true_transients())
