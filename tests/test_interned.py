"""Interned ``Name``/``NameTable``: identity, equivalence, determinism.

Three layers of guarantees:

* **extensional equivalence** — hypothesis properties assert every
  ``Name`` operation (labels, parent, tld, registrable) agrees with an
  independent string-level reference implementation (a transcript of
  the pre-interning ``dnscore.name``/``psl`` algorithms) over valid,
  invalid, IDN (``xn--``), mixed-case, trailing-dot, and wildcard
  inputs — including identical exception behaviour;
* **interner identity** — ``Name.of(x) is Name.of(x)`` for any two
  spellings of the same name, across layers;
* **determinism** — the world-fingerprint goldens in
  ``tests/test_determinism.py`` pin that threading ``Name`` through
  every layer changed no sampled value; here the cheap half is
  re-asserted (interning is draw-free and fingerprint rendering of
  ``Name`` equals the plain string).
"""

import copy
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore import name as dnsname
from repro.dnscore.interned import (
    MAX_NAME_LENGTH,
    Name,
    NameTable,
    default_table,
    intern_name,
)
from repro.dnscore.psl import BuggyPublicSuffixList, PublicSuffixList, default_psl
from repro.errors import DomainNameError, PSLError


# ---------------------------------------------------------------------------
# Reference implementations (the seed string algorithms, independent of
# the interned fast path — deliberately naive).
# ---------------------------------------------------------------------------

def ref_normalize(name):
    if not isinstance(name, str):
        raise DomainNameError("not a str")
    text = name.strip().lower()
    if text.endswith("."):
        text = text[:-1]
    if text == "":
        return ""
    if len(text) > MAX_NAME_LENGTH:
        raise DomainNameError("too long")
    labels = text.split(".")
    for label in labels:
        if label == "*":
            continue
        if (not label or len(label) > 63 or label.startswith("-")
                or label.endswith("-")
                or any(c not in "abcdefghijklmnopqrstuvwxyz0123456789-"
                       for c in label)):
            raise DomainNameError(f"invalid label {label!r}")
    return ".".join(labels)


def ref_registrable(psl, name):
    """The pre-refactor registrable_domain, via the PSL core matcher."""
    norm = ref_normalize(name)
    if norm.startswith("*."):
        norm = norm[2:]
    labels = norm.split(".") if norm else []
    if not labels:
        raise PSLError("root")
    n = psl._suffix_length(tuple(reversed(labels)))
    if len(labels) <= n:
        raise PSLError("public suffix")
    return ".".join(labels[-(n + 1):])


# ---------------------------------------------------------------------------
# Input strategies: valid, IDN-ish, wildcard, mixed-case, and invalid.
# ---------------------------------------------------------------------------

_LDH = "abcdefghijklmnopqrstuvwxyz0123456789"
_label = st.text(alphabet=_LDH, min_size=1, max_size=12)
_idn_label = _label.map(lambda s: "xn--" + s)
_any_label = st.one_of(_label, _idn_label)

valid_names = st.lists(_any_label, min_size=1, max_size=5).map(".".join)
#: One or two wildcard levels: the seed algorithm strips exactly one,
#: so '*.*.x' inputs pin that a remaining '*' stays an ordinary label.
wildcard_names = st.tuples(valid_names, st.integers(1, 2)).map(
    lambda t: "*." * t[1] + t[0])
messy_spellings = st.tuples(
    st.one_of(valid_names, wildcard_names),
    st.booleans(), st.booleans()).map(
        lambda t: (t[0].upper() if t[1] else t[0]) + ("." if t[2] else ""))
invalid_names = st.one_of(
    st.just("-bad.com"), st.just("bad-.com"), st.just("a..b"),
    st.just("under_score.com"), st.just("spa ce.com"),
    st.just("a" * 64 + ".com"), st.just(".".join(["a" * 60] * 5)),
    st.text(alphabet="äöü!#", min_size=1, max_size=5).map(lambda s: s + ".com"))
any_input = st.one_of(valid_names, wildcard_names, messy_spellings,
                      invalid_names)


class TestExtensionalEquivalence:
    @given(any_input)
    @settings(max_examples=300)
    def test_normalize_matches_reference(self, raw):
        try:
            expected = ref_normalize(raw)
        except DomainNameError:
            with pytest.raises(DomainNameError):
                dnsname.normalize(raw)
            return
        assert dnsname.normalize(raw) == expected

    @given(st.one_of(valid_names, wildcard_names))
    @settings(max_examples=200)
    def test_labels_tld_parent_match_strings(self, raw):
        name = intern_name(raw)
        parts = raw.split(".")
        assert name.labels == tuple(parts)
        assert name.rlabels == tuple(reversed(parts))
        assert name.tld == parts[-1]
        assert name.parent_name() == ".".join(parts[1:])
        assert dnsname.labels(raw) == parts
        assert dnsname.label_count(raw) == len(parts)
        assert dnsname.canonical_order_key(raw) == tuple(reversed(parts))

    @given(st.one_of(valid_names, wildcard_names, messy_spellings))
    @settings(max_examples=200)
    def test_registrable_matches_reference(self, raw):
        psl = default_psl()
        try:
            expected = ref_registrable(psl, raw)
        except PSLError:
            expected = None
        name = intern_name(raw)
        assert name.registrable(psl) == expected
        assert psl.registrable_or_none(raw) == expected
        if expected is None:
            with pytest.raises(PSLError):
                psl.registrable_domain(raw)
        else:
            assert psl.registrable_domain(raw) == expected

    @given(st.one_of(valid_names, wildcard_names))
    @settings(max_examples=150)
    def test_registrable_consistent_across_psls(self, raw):
        """Per-name caching keyed by PSL instance never leaks across
        instances — alternating lookups stay individually correct."""
        good, buggy = default_psl(), BuggyPublicSuffixList()
        name = intern_name(raw)
        for psl in (good, buggy, good, buggy):
            try:
                expected = ref_registrable(psl, raw)
            except PSLError:
                expected = None
            assert name.registrable(psl) == expected

    def test_single_wildcard_level_stripped(self):
        """Exactly one '*.' strips, as in the seed string algorithm:
        '*.*.com' keeps one '*' as an ordinary label."""
        psl = default_psl()
        assert psl.registrable_domain("*.*.com") == "*.com"
        assert psl.registrable_or_none("*.*.com") == "*.com"
        assert intern_name("*.*.com").registrable(psl) == "*.com"
        with pytest.raises(PSLError):
            psl.registrable_domain("*.com")

    @given(valid_names)
    @settings(max_examples=150)
    def test_split_agrees_with_parts(self, raw):
        psl = default_psl()
        try:
            reg, suffix = psl.split(raw)
        except PSLError:
            with pytest.raises(PSLError):
                psl.registrable_domain(raw)
            return
        assert reg == psl.registrable_domain(raw)
        assert suffix == psl.public_suffix(raw)
        assert reg.endswith(suffix)
        assert len(reg.split(".")) == len(suffix.split(".")) + 1


class TestInternerIdentity:
    @given(st.one_of(valid_names, wildcard_names))
    @settings(max_examples=200)
    def test_same_spelling_same_object(self, raw):
        assert intern_name(raw) is intern_name(raw)
        assert Name.of(raw) is intern_name(raw)

    @given(valid_names)
    @settings(max_examples=200)
    def test_spellings_converge(self, raw):
        canonical = intern_name(raw)
        assert intern_name(raw.upper()) is canonical
        assert intern_name(raw + ".") is canonical
        assert intern_name(canonical) is canonical
        assert dnsname.normalize(raw.upper() + ".") is canonical

    @given(valid_names)
    @settings(max_examples=100)
    def test_derived_names_are_interned(self, raw):
        name = intern_name(raw)
        assert name.parent_name() is intern_name(name.parent_name())
        wild = intern_name(f"*.{raw}")
        assert wild.stripped() is name
        reg = name.registrable(default_psl())
        if reg is not None:
            assert reg is intern_name(reg)

    def test_direct_construction_routes_through_interner(self):
        """``Name(x)`` must not create an uninterned instance with
        unset slots — it is ``Name.of(x)``."""
        name = Name("Direct.EXAMPLE.com.")
        assert name is intern_name("direct.example.com")
        assert name.tld == "com"
        assert Name() is intern_name("")
        with pytest.raises(DomainNameError):
            Name("-bad-.com")

    def test_identity_survives_copy_and_pickle(self):
        name = intern_name("identity.example.com")
        assert copy.copy(name) is name
        assert copy.deepcopy(name) is name
        assert pickle.loads(pickle.dumps(name)) is name

    def test_value_equals_plain_str(self):
        name = intern_name("eq.example.com")
        assert name == "eq.example.com"
        assert hash(name) == hash("eq.example.com")
        assert str(name) == "eq.example.com"
        assert "{}".format(name) == "eq.example.com"
        assert repr(name) == repr("eq.example.com")
        assert {name: 1}["eq.example.com"] == 1


class TestNameTable:
    def test_reserve_grows_alias_limit(self):
        table = NameTable()
        base = table.alias_limit
        table.reserve(10 * base)
        assert table.alias_limit == 20 * base
        assert table.expected == 10 * base
        # Growth-only: a smaller later hint never shrinks the table.
        table.reserve(1)
        assert table.alias_limit == 20 * base

    def test_reserve_rejects_negative(self):
        with pytest.raises(DomainNameError):
            NameTable().reserve(-1)

    def test_canonical_entries_never_evict(self):
        table = NameTable()
        table.alias_limit = 4
        names = [table.intern(f"n{i}.example.com") for i in range(64)]
        for i, name in enumerate(names):
            assert table.intern(f"n{i}.example.com") is name
        assert len(table) >= 64

    def test_alias_memo_bounded(self):
        table = NameTable()
        table.alias_limit = 8
        for i in range(100):
            table.intern(f"N{i}.EXAMPLE.COM.")
        assert len(table._aliases) <= 8

    def test_rejects_unhashable_and_non_str(self):
        table = NameTable()
        for bad in (42, None, ["a"], b"bytes"):
            with pytest.raises(DomainNameError):
                table.intern(bad)

    def test_stats_shape(self):
        stats = default_table().stats()
        for key in ("interned", "aliases", "alias_limit", "expected",
                    "hits", "misses", "alias_hits"):
            assert key in stats

    def test_world_build_sizes_the_process_table(self):
        from repro.workload.scenario import small_world
        table = default_table()
        world = small_world(scale=1 / 5000)
        assert table.expected > 0
        assert table.alias_limit >= 2 * table.expected
        # Every registered domain was interned at generation.
        some_domain = next(iter(world.registries)).lifecycles()
        assert next(some_domain).domain in table


class TestPslRuleVersioning:
    def test_add_rule_invalidates_name_caches(self):
        psl = PublicSuffixList(rules=["test"])
        name = intern_name("x.y.co.test")
        assert name.registrable(psl) == "co.test"
        psl.add_rule("co.test")
        assert name.registrable(psl) == "y.co.test"


class _CountingPsl(PublicSuffixList):
    """PSL that counts core suffix matches (cache-miss observations)."""

    def __init__(self, rules):
        super().__init__(rules=rules)
        self.matches = 0

    def _suffix_length(self, reversed_labels):
        self.matches += 1
        return super()._suffix_length(reversed_labels)


class TestRegistrableTwoSlotCache:
    """``Name.registrable`` keeps the last TWO (PSL, version) results.

    A workload that alternates two PSL instances over the same names —
    an ablation comparing rule sets per event — must compute each
    (name, rule set) pair once, not once per switch (the single-slot
    behaviour retired by this cache).
    """

    def test_interleaving_two_psls_never_recomputes(self):
        one = _CountingPsl(rules=["test"])
        two = _CountingPsl(rules=["test", "co.test"])
        names = [intern_name(f"host-{i}.site-{i}.co.test") for i in range(20)]
        for name in names:
            assert name.registrable(one) is not None
        warm_one, warm_two = one.matches, two.matches
        # Interleave the two instances over the same names, twice over.
        for _ in range(2):
            for name in names:
                assert name.registrable(one).endswith("co.test")
                assert str(name.registrable(two)).count(".") == 2
        # `one` was warmed above; `two` pays one match per name, once.
        assert one.matches == warm_one
        assert two.matches == warm_two + len(names)

    def test_results_stay_correct_per_instance(self):
        one = PublicSuffixList(rules=["test"])
        two = PublicSuffixList(rules=["test", "co.test"])
        name = intern_name("a.b.co.test")
        for _ in range(3):
            assert name.registrable(one) == "co.test"
            assert name.registrable(two) == "b.co.test"

    def test_third_psl_evicts_least_recent(self):
        one = _CountingPsl(rules=["test"])
        two = _CountingPsl(rules=["test", "co.test"])
        three = _CountingPsl(rules=["test", "b.co.test"])
        name = intern_name("a.b.co.test")
        for psl in (one, two, three):
            name.registrable(psl)
        assert (one.matches, two.matches, three.matches) == (1, 1, 1)
        # Rotating through three instances exceeds the two slots: the
        # least-recently-used one recomputes on return.
        name.registrable(one)
        assert one.matches == 2
        # ...but the two most recent stay cached.
        name.registrable(one)
        name.registrable(three)
        assert (one.matches, three.matches) == (2, 1)

    def test_version_bump_still_invalidates_both_slots(self):
        one = PublicSuffixList(rules=["test"])
        two = PublicSuffixList(rules=["test"])
        name = intern_name("x.y.co.test")
        assert name.registrable(one) == "co.test"
        assert name.registrable(two) == "co.test"
        one.add_rule("co.test")
        assert name.registrable(one) == "y.co.test"
        assert name.registrable(two) == "co.test"


class TestDetectorEquivalence:
    def test_bulk_run_matches_per_event_processing(self):
        """The detector's inlined bulk loop is observably identical to
        the per-event API (stats included)."""
        from repro.core.ctdetect import CTDetector
        from repro.workload.scenario import small_world
        world = small_world(scale=1 / 5000)
        bulk = CTDetector(world.archive, world.registries.tlds())
        bulk_out = bulk.run(world.certstream, world.window.start,
                            world.window.end)
        single = CTDetector(world.archive, world.registries.tlds())
        single_out = {}
        for event in world.certstream.events(world.window.start,
                                             world.window.end):
            for candidate in single.process_event(event):
                single_out[candidate.domain] = candidate
        assert bulk_out == single_out
        assert bulk.stats == single.stats

    def test_bulk_run_flushes_stats_on_error(self):
        """A drain that raises mid-feed still flushes its counters, so
        detector state (_seen, broker topic) and metrics stay in step."""
        from repro.core.ctdetect import CTDetector
        from repro.workload.scenario import small_world
        world = small_world(scale=1 / 5000)
        detector = CTDetector(world.archive, world.registries.tlds())

        boom = RuntimeError("mid-feed failure")

        class ExplodingFeed:
            def __init__(self, feed, after):
                self.feed = feed
                self.after = after

            def events(self, start_ts, end_ts):
                for i, event in enumerate(self.feed.events(start_ts,
                                                           end_ts)):
                    if i >= self.after:
                        raise boom
                    yield event

        with pytest.raises(RuntimeError):
            detector.run(ExplodingFeed(world.certstream, 25),
                         world.window.start, world.window.end)
        assert detector.stats.events == 25
        assert detector.stats.candidates == len(detector._seen) - \
            detector.stats.filtered_in_zone
