"""Tests for RDAP servers and the never-retry client."""

import pytest

from repro.errors import RDAPNotFound, RDAPRateLimited, RDAPServerError
from repro.registry.policy import gtld
from repro.registry.rdap import (
    RDAPClient,
    RDAPFailure,
    RDAPServer,
    TokenBucket,
)
from repro.registry.registry import Registry, RegistryGroup
from repro.simtime.clock import DAY, HOUR, MINUTE


@pytest.fixture
def registry():
    reg = Registry(gtld("com", MINUTE, rdap_server_error_prob=0.0))
    reg.register("alive.com", 10_000, "GoDaddy",
                 ns_hosts=["ns1.h.net"], rdap_sync_lag=180)
    lc = reg.register("dead.com", 10_000, "NameCheap",
                      ns_hosts=["ns1.h.net"], rdap_sync_lag=180)
    reg.schedule_removal("dead.com", 10_000 + 2 * HOUR)
    reg.register("held.com", 5_000, "Tucows", ns_hosts=["ns1.h.net"],
                 held=True, rdap_sync_lag=180)
    return reg


@pytest.fixture
def server(registry):
    return RDAPServer(registry, flaky_prob=0.0)


class TestRDAPServer:
    def test_success_fields(self, server):
        record = server.query("alive.com", 20_000)
        assert record.created_at == 10_000
        assert record.registrar == "GoDaddy"
        assert record.registrar_iana_id == 146
        assert record.statuses == ("active",)
        assert record.created_iso.startswith("1970-01-01T02:46:40")

    def test_unknown_domain_404(self, server):
        with pytest.raises(RDAPNotFound):
            server.query("ghost.com", 20_000)

    def test_too_early_404(self, server):
        """Cause (ii): RDAP not yet in sync just after registration."""
        with pytest.raises(RDAPNotFound):
            server.query("alive.com", 10_000 + 60)
        assert server.query("alive.com", 10_000 + 180) is not None

    def test_too_late_404(self, server):
        """Cause (i): the object is gone once the registrar deletes."""
        assert server.query("dead.com", 10_000 + HOUR) is not None
        with pytest.raises(RDAPNotFound):
            server.query("dead.com", 10_000 + 3 * HOUR)

    def test_held_domain_reports_server_hold(self, server):
        record = server.query("held.com", 20_000)
        assert record.statuses == ("serverHold",)

    def test_flaky_failures_deterministic(self, registry):
        flaky = RDAPServer(registry, flaky_prob=1.0)
        with pytest.raises(RDAPServerError):
            flaky.query("alive.com", 20_000)

    def test_failure_counter(self, server):
        with pytest.raises(RDAPNotFound):
            server.query("ghost.com", 20_000)
        assert server.failures == 1
        assert server.queries == 1

    def test_rate_limit(self, registry):
        limited = Registry(gtld("net", MINUTE, rdap_rate_limit_per_hour=3600,
                                rdap_server_error_prob=0.0))
        limited.register("x.net", 0, "GoDaddy", ns_hosts=["ns1.h.net"],
                         rdap_sync_lag=0)
        server = RDAPServer(limited, flaky_prob=0.0)
        # Burst capacity is rate/60 = 60 tokens; the 61st instant query
        # must be limited.
        for _ in range(60):
            server.query("x.net", 10_000)
        with pytest.raises(RDAPRateLimited):
            server.query("x.net", 10_000)


class TestTokenBucket:
    def test_burst_then_block(self):
        bucket = TokenBucket(3600, burst=2)
        assert bucket.try_acquire(0)
        assert bucket.try_acquire(0)
        assert not bucket.try_acquire(0)

    def test_refill(self):
        bucket = TokenBucket(3600, burst=1)  # 1 token/second
        assert bucket.try_acquire(0)
        assert not bucket.try_acquire(0)
        assert bucket.try_acquire(2)


class TestRDAPClient:
    def _client(self, registry):
        return RDAPClient(RegistryGroup([registry]))

    def test_fetch_success(self, registry):
        client = self._client(registry)
        result = client.fetch("alive.com", 20_000)
        assert result.ok and result.record.registrar == "GoDaddy"

    def test_fetch_not_found(self, registry):
        client = self._client(registry)
        result = client.fetch("ghost.com", 20_000)
        assert not result.ok and result.failure is RDAPFailure.NOT_FOUND

    def test_no_server_for_unknown_tld(self, registry):
        client = self._client(registry)
        result = client.fetch("a.unknowneverywhere", 20_000)
        assert result.failure is RDAPFailure.NO_SERVER

    def test_ip_cycling(self, registry):
        client = self._client(registry)
        ips = [client._next_ip() for _ in range(8)]
        assert ips[:4] == list(RDAPClient.DEFAULT_IPS)
        assert ips[4:] == list(RDAPClient.DEFAULT_IPS)

    def test_failure_rate_tracking(self, registry):
        client = self._client(registry)
        client.fetch("alive.com", 20_000)
        client.fetch("ghost.com", 20_000)
        assert client.failure_rate == 0.5

    def test_results_accumulate(self, registry):
        client = self._client(registry)
        client.fetch("alive.com", 20_000)
        client.fetch("alive.com", 21_000)
        assert len(client.results) == 2

    def test_requires_worker_ip(self, registry):
        from repro.errors import RDAPError
        with pytest.raises(RDAPError):
            RDAPClient(RegistryGroup([registry]), worker_ips=())
