"""The docs/ tree stays navigable and its examples stay runnable.

Two guarantees, also enforced by the CI ``docs`` job:

* every *relative* markdown link in ``docs/*.md`` and ``README.md``
  resolves to a file that exists (and, for in-page anchors, to a
  heading that exists);
* every fenced doctest example in ``docs/*.md`` passes under
  :mod:`doctest` (the CI job runs ``python -m doctest`` over the same
  files).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: ``[text](target)`` — good enough for these hand-written pages
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))
LINKED_PAGES = DOC_PAGES + [REPO_ROOT / "README.md"]


def _heading_anchors(path: Path) -> set:
    """GitHub-style anchor slugs of every heading in ``path``."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip().lower()
            slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
            anchors.add(slug)
    return anchors


def test_docs_tree_exists():
    names = {p.name for p in DOC_PAGES}
    assert {"architecture.md", "serve.md", "scan.md",
            "interned-names.md", "determinism.md",
            "benchmarks.md", "observability.md",
            "scenarios.md"} <= names


@pytest.mark.parametrize("page", LINKED_PAGES,
                         ids=[p.name for p in LINKED_PAGES])
def test_internal_links_resolve(page):
    text = page.read_text(encoding="utf-8")
    problems = []
    for target in _LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):   # external scheme
            continue
        path_part, _, anchor = target.partition("#")
        resolved = page if not path_part else (page.parent / path_part)
        if not resolved.exists():
            problems.append(f"{page.name}: broken link target {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _heading_anchors(resolved):
                problems.append(
                    f"{page.name}: no heading {anchor!r} in {path_part or page.name}")
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("page", DOC_PAGES, ids=[p.name for p in DOC_PAGES])
def test_doctest_examples_pass(page):
    # testfile() parses the whole markdown file for ``>>>`` examples —
    # exactly what the CI docs job runs via ``python -m doctest``.
    failures, tests = doctest.testfile(str(page), module_relative=False,
                                       verbose=False)
    assert failures == 0
    if page.name == "determinism.md":
        # The fast-forward contract example must actually be there.
        assert tests > 0
