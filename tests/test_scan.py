"""Tests for repro.scan — the bulk DNS measurement engine.

The load-bearing property: :class:`ScanEngine` must produce
:class:`MonitorReport` objects *identical* (full dataclass equality,
probe counts included) to :class:`LoopMonitor`'s literal probe loop
under default configuration.  Everything the engine does to be fast —
A/AAAA early-stop, negative-answer dedup, delegation-removed
termination, dark-host suppression — must be invisible in the report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.broker import Broker, TOPIC_OBSERVATIONS
from repro.bus.columnar import ColumnStore
from repro.core.monitor import LoopMonitor, MonitorConfig
from repro.core.pipeline import DarkDNSPipeline, PipelineConfig
from repro.dnscore.records import RRType
from repro.dnscore.resolver import ResolverStats
from repro.errors import ScanError
from repro.registry.policy import gtld
from repro.registry.registry import Registry, RegistryGroup
from repro.scan import (
    AuthorityRateLimiter,
    ProbeResultStore,
    ProbeScheduler,
    ScanConfig,
    ScanEngine,
)
from repro.simtime.clock import DAY, HOUR, MINUTE


def build_registry(tld="com", interval=MINUTE):
    return Registry(gtld(tld, interval, snapshot_offset=0))


def register(registry, domain, created, lifetime=None, lame=False,
             ns_change_at=None):
    lc = registry.register(domain, created, "GoDaddy",
                           ns_hosts=["ns1.h.net", "ns2.h.net"],
                           a_addrs=["192.0.2.1"],
                           aaaa_addrs=["2001:db8::1"], lame=lame)
    if lifetime is not None:
        registry.schedule_removal(domain, created + lifetime)
    if ns_change_at is not None and lc.zone_added_at is not None:
        registry.change_nameservers(domain, created + ns_change_at,
                                    ["ns9.other.net"])
    return lc


SHORT = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR)
SHORT_MONITOR = MonitorConfig(probe_interval=10 * MINUTE, duration=6 * HOUR)


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

@st.composite
def domain_scenario(draw):
    created = 10_000 + draw(st.integers(0, 4 * HOUR))
    lifetime = draw(st.one_of(
        st.none(),
        st.integers(5 * MINUTE, 12 * HOUR)))
    lame = draw(st.booleans())
    ns_change_at = draw(st.one_of(st.none(), st.integers(MINUTE, 5 * HOUR)))
    interval = draw(st.sampled_from([MINUTE, 17 * MINUTE]))
    start_offset = draw(st.integers(-30 * MINUTE, 2 * HOUR))
    return created, lifetime, lame, ns_change_at, interval, start_offset


class TestScanLoopEquivalence:
    """ScanEngine must observe exactly what LoopMonitor observes."""

    @given(domain_scenario())
    @settings(max_examples=60, deadline=None)
    def test_reports_identical(self, scenario):
        created, lifetime, lame, ns_change_at, interval, start_offset = scenario
        registry = build_registry(interval=interval)
        lc = register(registry, "probe.com", created, lifetime=lifetime,
                      lame=lame,
                      ns_change_at=(ns_change_at
                                    if lifetime is None
                                    or (ns_change_at or 0) < lifetime
                                    else None))
        group = RegistryGroup([registry])
        start = max(0, (lc.zone_added_at or created) + start_offset)
        loop = LoopMonitor(group, SHORT_MONITOR).observe("probe.com", start)
        scan = ScanEngine(group, SHORT).observe("probe.com", start)
        # Full dataclass equality: every field, probe count included.
        assert scan == loop

    def test_equivalence_on_scenario_domains(self, tiny_world, tiny_result):
        """Bulk path (observe_all) against the loop on real candidates."""
        config = MonitorConfig(probe_interval=10 * MINUTE, duration=12 * HOUR)
        loop = LoopMonitor(tiny_world.registries, config)
        engine = ScanEngine(tiny_world.registries,
                            ScanConfig.from_monitor(config))
        sample = sorted(tiny_result.candidates)[:40]
        starts = {d: tiny_result.candidates[d].ct_seen_at for d in sample}
        reports = engine.observe_all(starts)
        for domain, start in starts.items():
            assert reports[domain] == loop.observe(domain, start), domain

    def test_scan_sends_far_fewer_probes(self, tiny_world, tiny_result):
        """The engine's whole point: identical reports, fewer probes."""
        config = ScanConfig(probe_interval=10 * MINUTE, duration=12 * HOUR)
        engine = ScanEngine(tiny_world.registries, config)
        sample = sorted(tiny_result.candidates)[:40]
        reports = engine.observe_all(
            {d: tiny_result.candidates[d].ct_seen_at for d in sample})
        nominal = sum(r.probes for r in reports.values())
        assert engine.metrics.probes_sent.value < nominal / 2


# ---------------------------------------------------------------------------
# Scheduler edge cases
# ---------------------------------------------------------------------------

class TestSchedulerEdgeCases:
    def test_domain_registered_mid_window(self):
        """Monitoring starts before the zone add: early NXDOMAIN instants
        must not terminate the domain, and the delegation must still be
        picked up once published."""
        registry = build_registry()
        lc = register(registry, "late.com", 50_000)
        group = RegistryGroup([registry])
        start = lc.zone_added_at - 90 * MINUTE
        scan = ScanEngine(group, SHORT).observe("late.com", start)
        loop = LoopMonitor(group, SHORT_MONITOR).observe("late.com", start)
        assert scan == loop
        assert scan.ever_resolved
        assert scan.first_a == ("192.0.2.1",)

    def test_grid_crossing_window_boundary(self):
        """A removal after monitor_end is invisible; the grid never
        probes at or past start + duration (ceil-length grid, duration
        not a multiple of the interval)."""
        config = ScanConfig(probe_interval=17 * MINUTE, duration=100 * MINUTE)
        mconfig = MonitorConfig(probe_interval=17 * MINUTE,
                                duration=100 * MINUTE)
        registry = build_registry()
        # Dies well after the monitoring window closes.
        lc = register(registry, "outlive.com", 10_000, lifetime=2 * DAY)
        group = RegistryGroup([registry])
        scan = ScanEngine(group, config).observe("outlive.com",
                                                 lc.zone_added_at)
        loop = LoopMonitor(group, mconfig).observe("outlive.com",
                                                   lc.zone_added_at)
        assert scan == loop
        assert not scan.observed_removal()
        grid_len = -(-config.duration // config.probe_interval)
        assert scan.probes == grid_len * 3
        last_instant = lc.zone_added_at + (grid_len - 1) * config.probe_interval
        assert scan.last_ns_ok == last_instant
        assert last_instant < scan.monitor_end

    def test_early_termination_on_removed_delegation(self):
        """Once the delegation disappears the rest of the grid is dropped
        — without changing the report."""
        registry = build_registry()
        lc = register(registry, "dying.com", 10_000, lifetime=HOUR)
        group = RegistryGroup([registry])
        engine = ScanEngine(group, SHORT)
        scan = engine.observe("dying.com", lc.zone_added_at)
        loop = LoopMonitor(group, SHORT_MONITOR).observe("dying.com",
                                                         lc.zone_added_at)
        assert scan == loop
        assert scan.observed_removal()
        assert engine.metrics.terminated_early.value == 1
        # 6 h of 10-min instants is 36; the domain died after ~1 h.
        assert engine.metrics.probes_sent.value < 36

    def test_nxdomain_stable_early_termination(self):
        """The opt-in streak cutoff stops probing ghosts early while
        reporting the same all-NXDOMAIN outcome."""
        group = RegistryGroup([build_registry()])
        config = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR,
                            terminate_nxdomain_streak=3)
        engine = ScanEngine(group, config)
        scan = engine.observe("ghost.com", 10_000)
        loop = LoopMonitor(group, SHORT_MONITOR).observe("ghost.com", 10_000)
        assert scan == loop          # ghosts: the cutoff is invisible
        assert engine.metrics.probes_sent.value == 3  # 3 NS, nothing else
        assert engine.metrics.terminated_early.value == 1

    def test_nxdomain_streak_misses_late_registration(self):
        """The documented accuracy/cost tradeoff: with the streak cutoff
        on, a domain registered later than streak × interval into the
        window is (wrongly) written off — which is exactly why the
        cutoff defaults to off."""
        registry = build_registry()
        lc = register(registry, "late.com", 50_000)
        group = RegistryGroup([registry])
        start = lc.zone_added_at - 2 * HOUR
        config = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR,
                            terminate_nxdomain_streak=3)
        scan = ScanEngine(group, config).observe("late.com", start)
        assert not scan.ever_resolved
        safe = ScanEngine(group, SHORT).observe("late.com", start)
        assert safe.ever_resolved

    def test_scheduler_queue_stays_small(self):
        """Lazy grids: queue depth is O(domains), not O(domains × 288)."""
        scheduler = ProbeScheduler(probe_interval=10 * MINUTE,
                                   duration=48 * HOUR)
        for i in range(500):
            scheduler.add_domain(f"d{i}.com", 10_000)
        assert len(scheduler) == 500
        assert scheduler.grid_size("d0.com") == 288

    def test_scheduler_fifo_per_instant(self):
        scheduler = ProbeScheduler(probe_interval=600, duration=1200)
        scheduler.add_domain("a.com", 1000)
        scheduler.add_domain("b.com", 1000)
        first, second = scheduler.pop(), scheduler.pop()
        assert (first.domain, second.domain) == ("a.com", "b.com")
        # A deferred entry lands behind work already queued at that time.
        scheduler.defer(first, 1600)
        assert scheduler.advance("b.com")  # queues b's instant @1600
        assert scheduler.pop().domain == "b.com"
        assert scheduler.pop().domain == "a.com"

    def test_scheduler_terminate_drops_pending(self):
        scheduler = ProbeScheduler(probe_interval=600, duration=3600)
        scheduler.add_domain("a.com", 1000)
        scheduler.terminate("a.com")
        assert scheduler.pop() is None
        assert not scheduler.advance("a.com")

    def test_scheduler_rejects_duplicates_and_bad_config(self):
        scheduler = ProbeScheduler(probe_interval=600, duration=3600)
        scheduler.add_domain("a.com", 0)
        with pytest.raises(ScanError):
            scheduler.add_domain("a.com", 0)
        with pytest.raises(ScanError):
            ProbeScheduler(probe_interval=0, duration=3600)
        with pytest.raises(ScanError):
            ProbeScheduler(probe_interval=600, duration=3600, jitter=600)

    def test_jitter_is_deterministic_and_bounded(self):
        for _ in range(2):
            scheduler = ProbeScheduler(probe_interval=600, duration=1800,
                                       jitter=300)
            scheduler.add_domain("a.com", 10_000)
            entry = scheduler.pop()
            assert 10_000 <= entry.due < 10_300
            first_due = entry.due
        scheduler2 = ProbeScheduler(probe_interval=600, duration=1800,
                                    jitter=300)
        scheduler2.add_domain("a.com", 10_000)
        assert scheduler2.pop().due == first_due


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------

class TestRateLimiting:
    def test_limiter_spend_and_delay(self):
        limiter = AuthorityRateLimiter(qps=2.0)
        assert limiter.try_acquire("com", now=100, n=2)
        assert not limiter.try_acquire("com", now=100, n=1)
        assert limiter.delay_until("com", now=100, n=2) == 1
        assert limiter.try_acquire("com", now=101, n=2)
        assert limiter.max_sent_per_second() == {"com": 2}

    def test_limiter_rejects_bad_qps(self):
        with pytest.raises(ScanError):
            AuthorityRateLimiter(qps=0)

    def test_starvation_fairness_under_tight_budget(self):
        """A congested authority throttles without starving anyone: every
        domain on it completes, and the per-second cap is never broken."""
        com = build_registry("com")
        net = build_registry("net")
        domains = {}
        for i in range(8):
            lc = register(com, f"busy{i}.com", 10_000)
            domains[f"busy{i}.com"] = lc.zone_added_at
        lc = register(net, "calm.net", 10_000)
        domains["calm.net"] = lc.zone_added_at
        group = RegistryGroup([com, net])
        config = ScanConfig(probe_interval=10 * MINUTE, duration=2 * HOUR,
                            qps_per_authority=2.0)
        engine = ScanEngine(group, config)
        reports = engine.observe_all(domains)
        assert len(reports) == 9
        for domain, report in reports.items():
            assert report.ever_resolved, f"{domain} was starved"
        assert engine.metrics.rate_limit_stalls.value > 0
        peaks = engine.limiter.max_sent_per_second()
        assert all(peak <= 2 for peak in peaks.values()), peaks
        # Stalled probes ran late; the lag histogram saw it.
        assert engine.metrics.probe_lag.max > 0

    def test_fractional_qps_still_makes_progress(self):
        """A cap below 1 probe/sec must throttle, not deadlock: the
        bucket banks (at least) one whole probe, so every stalled entry
        eventually executes and the run terminates."""
        registry = build_registry()
        lc = register(registry, "slow.com", 10_000)
        config = ScanConfig(probe_interval=10 * MINUTE, duration=HOUR,
                            qps_per_authority=0.5)
        engine = ScanEngine(RegistryGroup([registry]), config)
        report = engine.observe("slow.com", lc.zone_added_at)
        assert report.ever_resolved
        peaks = engine.limiter.max_sent_per_second()
        assert all(peak <= 1 for peak in peaks.values()), peaks

    def test_unthrottled_runs_exactly_on_grid(self):
        registry = build_registry()
        lc = register(registry, "live.com", 10_000)
        engine = ScanEngine(RegistryGroup([registry]), SHORT)
        engine.observe("live.com", lc.zone_added_at)
        assert engine.metrics.rate_limit_stalls.value == 0
        assert engine.metrics.probe_lag.max == 0


# ---------------------------------------------------------------------------
# Engine behaviours beyond the loop contract
# ---------------------------------------------------------------------------

class TestEngineBehaviour:
    def test_probe_budget_caps_sends(self):
        registry = build_registry()
        starts = {}
        for i in range(5):
            lc = register(registry, f"d{i}.com", 10_000)
            starts[f"d{i}.com"] = lc.zone_added_at
        config = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR,
                            probe_budget=20)
        engine = ScanEngine(RegistryGroup([registry]), config)
        reports = engine.observe_all(starts)
        assert engine.budget_exhausted
        assert engine.metrics.probes_sent.value <= 20
        assert len(reports) == 5  # partial reports still delivered
        assert engine.snapshot()["budget_exhausted"] is True

    def test_negcache_dedups_ghost_address_lookups(self):
        engine = ScanEngine(RegistryGroup([build_registry()]), SHORT)
        engine.observe("ghost.com", 10_000)
        grid = 6 * HOUR // (10 * MINUTE)
        assert engine.metrics.probes_sent.value == grid       # NS only
        assert engine.metrics.negcache_hits.value == grid * 2  # A + AAAA

    def test_dark_host_suppression_stops_lame_retries(self):
        registry = build_registry()
        lc = register(registry, "lame.com", 10_000, lame=True)
        engine = ScanEngine(RegistryGroup([registry]), SHORT)
        report = engine.observe("lame.com", lc.zone_added_at)
        assert report.ever_resolved and report.first_a == ()
        assert engine.metrics.retries.value > 0
        grid = 6 * HOUR // (10 * MINUTE)
        # NS every instant; A/AAAA only until the dark streak trips
        # (3 instants × (1 + 2 retries) × 2 qtypes = 18 probes).
        assert engine.metrics.probes_sent.value == grid + 18

    def test_observe_is_idempotent(self):
        registry = build_registry()
        lc = register(registry, "live.com", 10_000)
        engine = ScanEngine(RegistryGroup([registry]), SHORT)
        first = engine.observe("live.com", lc.zone_added_at)
        again = engine.observe("live.com", lc.zone_added_at)
        assert first is again
        assert engine.metrics.domains_scheduled.value == 1

    def test_reports_publish_to_bus(self):
        registry = build_registry()
        lc = register(registry, "live.com", 10_000)
        broker = Broker()
        engine = ScanEngine(RegistryGroup([registry]), SHORT, broker=broker)
        report = engine.observe("live.com", lc.zone_added_at)
        batch = broker.poll("sink", TOPIC_OBSERVATIONS)
        assert len(batch) == 1
        assert batch[0].value == report
        assert batch[0].key == "live.com"

    def test_config_validation(self):
        with pytest.raises(ScanError):
            ScanConfig(workers=0)
        with pytest.raises(ScanError):
            ScanConfig(qps_per_authority=-1)
        with pytest.raises(ScanError):
            ScanConfig(probe_budget=0)
        with pytest.raises(ScanError):
            ScanConfig(retry_backoff=0)
        # Jitter is config-level so the CLI fails fast, before paying
        # for the world build.
        with pytest.raises(ScanError):
            ScanConfig(jitter=-1)
        with pytest.raises(ScanError):
            ScanConfig(probe_interval=600, jitter=600)

    def test_snapshot_shape(self):
        registry = build_registry()
        lc = register(registry, "live.com", 10_000)
        engine = ScanEngine(RegistryGroup([registry]), SHORT,
                            store=ProbeResultStore())
        engine.observe("live.com", lc.zone_added_at)
        snap = engine.snapshot()
        payload = json.loads(json.dumps(snap))  # JSON-ready
        for key in ("probes_sent", "retries", "rate_limit_stalls",
                    "negcache_hits", "probe_lag", "queue_depth",
                    "resolver", "authority_peak_qps", "store"):
            assert key in payload, key
        assert payload["probe_lag"]["p99"] == 0
        assert payload["resolver"]["queries"] == payload["probes_sent"]


# ---------------------------------------------------------------------------
# The columnar result store
# ---------------------------------------------------------------------------

class TestProbeResultStore:
    def build_engine_with_store(self):
        registry = build_registry()
        lc = register(registry, "live.com", 10_000, lifetime=2 * HOUR)
        register(registry, "other.com", 10_000)
        store = ProbeResultStore()
        engine = ScanEngine(RegistryGroup([registry]), SHORT, store=store)
        starts = {"live.com": lc.zone_added_at, "other.com": lc.zone_added_at,
                  "ghost.com": lc.zone_added_at}
        engine.observe_all(starts)
        return engine, store, lc

    def test_per_domain_and_time_range_queries(self):
        engine, store, lc = self.build_engine_with_store()
        rows = store.for_domain("live.com")
        assert rows and all(r["domain"] == "live.com" for r in rows)
        assert rows[0]["qtype"] == "NS"
        window = store.time_range(lc.zone_added_at,
                                  lc.zone_added_at + 30 * MINUTE)
        assert window
        assert all(lc.zone_added_at <= r["ts"] < lc.zone_added_at
                   + 30 * MINUTE for r in window)
        ts_values = [r["ts"] for r in window]
        assert ts_values == sorted(ts_values)

    def test_store_counts_and_summary(self):
        engine, store, _ = self.build_engine_with_store()
        summary = store.summary()
        assert summary["rows"] == len(store)
        assert summary["domains"] == 3
        assert "NXDOMAIN" in summary["rcodes"]
        assert summary["qtypes"]["NS"] > 0

    def test_store_round_trip(self, tmp_path):
        engine, store, _ = self.build_engine_with_store()
        path = tmp_path / "probes.json"
        store.save(path)
        loaded = ProbeResultStore.load(path)
        assert len(loaded) == len(store)
        assert loaded.for_domain("ghost.com") == store.for_domain("ghost.com")

    def test_negcache_rows_are_marked(self):
        engine, store, _ = self.build_engine_with_store()
        ghost_rows = store.for_domain("ghost.com")
        assert any(r["negcache"] for r in ghost_rows)
        assert all(r["rcode"] == "NXDOMAIN" for r in ghost_rows)


class TestColumnStoreIndexes:
    def test_rows_where_catches_up_after_appends(self):
        table = ColumnStore("t", ["k", "v"])
        table.append({"k": "a", "v": 1})
        assert [r["v"] for r in table.rows_where("k", "a")] == [1]
        table.append({"k": "a", "v": 2})
        table.append({"k": "b", "v": 3})
        assert [r["v"] for r in table.rows_where("k", "a")] == [1, 2]
        assert table.rows_where("k", "missing") == []

    def test_rows_in_range_handles_unsorted_appends(self):
        table = ColumnStore("t", ["ts"])
        for ts in (5, 1, 9, 3, 7):
            table.append({"ts": ts})
        assert [r["ts"] for r in table.rows_in_range("ts", 3, 8)] == [3, 5, 7]
        table.append({"ts": 4})
        assert [r["ts"] for r in table.rows_in_range("ts", 3, 8)] == [3, 4, 5, 7]


# ---------------------------------------------------------------------------
# Aggregated resolver stats (satellite)
# ---------------------------------------------------------------------------

class TestResolverStatsAggregation:
    def test_merge(self):
        a = ResolverStats(queries=3, cache_hits=1, upstream_queries=2,
                          servfails=1, nxdomains=1)
        b = ResolverStats(queries=2, upstream_queries=2, nxdomains=2)
        merged = ResolverStats().merge(a).merge(b)
        assert merged.queries == 5
        assert merged.nxdomains == 3
        assert merged.snapshot()["cache_hits"] == 1

    def test_pool_aggregate_spreads_across_workers(self, tiny_world,
                                                   tiny_result):
        config = ScanConfig(probe_interval=10 * MINUTE, duration=6 * HOUR)
        engine = ScanEngine(tiny_world.registries, config)
        sample = sorted(tiny_result.candidates)[:30]
        engine.observe_all(
            {d: tiny_result.candidates[d].ct_seen_at for d in sample})
        aggregate = engine.pool.aggregate_stats()
        per_worker = [r.stats.queries for r in engine.pool.resolvers]
        assert aggregate.queries == sum(per_worker)
        assert sum(1 for q in per_worker if q > 0) > 1  # really a fleet
        assert engine.pool.total_queries() == aggregate.queries


# ---------------------------------------------------------------------------
# Pipeline integration
# ---------------------------------------------------------------------------

class TestPipelineIntegration:
    def test_scan_strategy_matches_analytic_in_pipeline(self, tiny_world):
        monitor = MonitorConfig(probe_interval=10 * MINUTE, duration=6 * HOUR)
        scan_result = DarkDNSPipeline(
            tiny_world, PipelineConfig(monitor=monitor,
                                       monitor_strategy="scan")).run()
        analytic_result = DarkDNSPipeline(
            tiny_world, PipelineConfig(monitor=monitor,
                                       monitor_strategy="analytic")).run()
        assert scan_result.monitors == analytic_result.monitors
        assert scan_result.stats == analytic_result.stats

    def test_pipeline_exposes_engine_metrics(self, tiny_world):
        monitor = MonitorConfig(probe_interval=10 * MINUTE, duration=6 * HOUR)
        pipeline = DarkDNSPipeline(
            tiny_world, PipelineConfig(monitor=monitor,
                                       monitor_strategy="scan"))
        result = pipeline.run()
        assert isinstance(pipeline.monitor, ScanEngine)
        snap = pipeline.monitor.snapshot()
        assert snap["domains_completed"] == len(result.monitors)
        assert snap["probes_sent"] > 0
