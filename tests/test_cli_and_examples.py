"""Smoke tests: the CLI and every example run end to end."""

import json
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["reproduce", "--scale", "4000"])
        assert args.command == "reproduce" and args.scale == 4000

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_feed_command(self, tmp_path, capsys):
        out = tmp_path / "feed.jsonl"
        rc = main(["feed", "--scale", "5000", "--no-cctld",
                   "--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert sum(1 for _ in out.open()) > 50

    def test_probe_command(self, capsys):
        rc = main(["probe", "--scale", "5000", "--no-cctld", "--seed", "3"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "SOA serial probing" in captured.out

    def test_sweep_command(self, capsys):
        rc = main(["sweep", "--scale", "5000", "--seed", "3"])
        assert rc == 0
        assert "Rapid Zone Updates" in capsys.readouterr().out

    def test_reproduce_command(self, capsys):
        rc = main(["reproduce", "--scale", "4000", "--no-cctld",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "overall:" in out

    def test_serve_command(self, capsys):
        rc = main(["serve", "--scale", "5000", "--no-cctld", "--seed", "3",
                   "--clients", "10"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["published"] > 50
        assert snap["delivered"] > 0
        assert "delivery_lag" in snap and "dropped_queue_full" in snap

    def test_scenarios_command_lists_the_registry(self, capsys):
        from repro.workload.scenarios import iter_scenarios
        rc = main(["scenarios"])
        assert rc == 0
        out = capsys.readouterr().out
        for cls in iter_scenarios():
            assert cls.name in out
            assert cls.description in out
            for knob in cls.knobs:
                assert knob.name in out

    def test_scenario_flag_builds_the_scenario_world(self, tmp_path,
                                                     capsys):
        plain = tmp_path / "plain.jsonl"
        burst = tmp_path / "burst.jsonl"
        assert main(["feed", "--scale", "5000", "--no-cctld",
                     "--output", str(plain)]) == 0
        assert main(["feed", "--scale", "5000", "--no-cctld",
                     "--scenario", "registrar-burst:burst_mult=12",
                     "--output", str(burst)]) == 0
        assert (sum(1 for _ in burst.open())
                > sum(1 for _ in plain.open()))

    def test_unknown_scenario_exits_2_with_available_list(self, capsys):
        rc = main(["probe", "--scale", "5000", "--no-cctld",
                   "--scenario", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "registrar-burst" in err

    @pytest.mark.parametrize("spec", [
        "registrar-burst:bogus=1",       # unknown knob
        "registrar-burst:burst_day",     # malformed pair
        "registrar-burst:burst_day=x",   # non-numeric value
    ])
    def test_bad_scenario_spec_exits_2(self, spec, capsys):
        rc = main(["probe", "--scale", "5000", "--no-cctld",
                   "--scenario", spec])
        assert rc == 2
        assert capsys.readouterr().err

    def test_serve_replay_command(self, tmp_path, capsys):
        archive = tmp_path / "feed.jsonl"
        rc = main(["feed", "--scale", "5000", "--no-cctld",
                   "--output", str(archive)])
        assert rc == 0
        rc = main(["serve", "--replay", str(archive), "--clients", "5",
                   "--queue-depth", "5000",
                   "--filters", "tld=com", "glob=*a*"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["published"] > 50 and snap["delivered"] > 0


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "rapid_zone_updates.py",
    "public_feed.py",
    "feed_server.py",
])
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    """Examples must execute cleanly via the public API."""
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_campaign_forensics_example(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["campaign_forensics.py"])
    runpy.run_path(str(EXAMPLES / "campaign_forensics.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "campaign" in out
