"""Tests for repro.simtime.timeline, including the grid-sampling
equivalence that justifies the analytic monitor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simtime.timeline import BooleanTimeline, Timeline, merge_change_times


class TestTimelineBasics:
    def test_initial_value(self):
        tl = Timeline(initial="x")
        assert tl.at(0) == "x"
        assert tl.at(10 ** 9) == "x"

    def test_no_initial_is_none(self):
        assert Timeline().at(5) is None

    def test_set_and_query(self):
        tl = Timeline()
        tl.set(100, "a")
        tl.set(200, "b")
        assert tl.at(99) is None
        assert tl.at(100) == "a"
        assert tl.at(150) == "a"
        assert tl.at(200) == "b"
        assert tl.at(10 ** 9) == "b"

    def test_same_timestamp_overwrites(self):
        tl = Timeline()
        tl.set(100, "a")
        tl.set(100, "b")
        assert tl.at(100) == "b"
        assert len(tl) == 1

    def test_noop_change_skipped(self):
        tl = Timeline(initial="a")
        tl.set(100, "a")
        assert len(tl) == 0

    def test_rejects_out_of_order(self):
        tl = Timeline()
        tl.set(100, "a")
        with pytest.raises(SimulationError):
            tl.set(50, "b")

    def test_constant(self):
        tl = Timeline.constant(42)
        assert tl.at(-100) == 42 and tl.at(10 ** 12) == 42

    def test_bool(self):
        assert not Timeline()
        assert Timeline(initial=1)
        tl = Timeline()
        tl.set(1, "a")
        assert tl


class TestSegments:
    def _make(self):
        tl = Timeline()
        tl.set(100, "a")
        tl.set(200, "b")
        tl.set(300, "c")
        return tl

    def test_segments_cover_window(self):
        segments = list(self._make().segments(50, 350))
        assert segments == [
            (50, 100, None), (100, 200, "a"), (200, 300, "b"), (300, 350, "c")]

    def test_segments_clip(self):
        segments = list(self._make().segments(150, 250))
        assert segments == [(150, 200, "a"), (200, 250, "b")]

    def test_empty_window(self):
        assert list(self._make().segments(200, 200)) == []

    def test_value_changed_within(self):
        tl = self._make()
        assert tl.value_changed_within(100, 250)
        assert not tl.value_changed_within(300, 500)

    def test_last_time_with(self):
        tl = self._make()
        # Grid from 0 step 30; 'a' holds on [100, 200): last grid 180.
        assert tl.last_time_with(lambda v: v == "a", 0, 1000, 30) == 180

    def test_last_time_with_no_match(self):
        tl = self._make()
        assert tl.last_time_with(lambda v: v == "z", 0, 1000, 30) is None

    def test_last_time_with_rejects_bad_step(self):
        with pytest.raises(SimulationError):
            self._make().last_time_with(lambda v: True, 0, 10, 0)

    def test_sample_matches_at(self):
        tl = self._make()
        for ts, value in tl.sample(0, 400, 25):
            assert value == tl.at(ts)


@st.composite
def timeline_and_grid(draw):
    changes = draw(st.lists(
        st.tuples(st.integers(0, 1000), st.sampled_from("abcd")),
        min_size=0, max_size=12))
    changes.sort(key=lambda c: c[0])
    tl = Timeline()
    for ts, value in changes:
        tl.set(ts, value)
    start = draw(st.integers(0, 500))
    end = start + draw(st.integers(1, 600))
    step = draw(st.integers(1, 60))
    return tl, start, end, step


class TestGridEquivalence:
    """segments/last_time_with must agree with brute-force grid walks —
    this property is what lets the analytic monitor replace the probe
    loop."""

    @given(timeline_and_grid())
    @settings(max_examples=200)
    def test_last_time_with_equals_bruteforce(self, data):
        tl, start, end, step = data
        predicate = lambda v: v == "a"
        brute = None
        ts = start
        while ts < end:
            if predicate(tl.at(ts)):
                brute = ts
            ts += step
        assert tl.last_time_with(predicate, start, end, step) == brute

    @given(timeline_and_grid())
    @settings(max_examples=200)
    def test_segments_agree_with_at(self, data):
        tl, start, end, _ = data
        for seg_start, seg_end, value in tl.segments(start, end):
            assert value == tl.at(seg_start)
            assert value == tl.at(seg_end - 1)

    @given(timeline_and_grid())
    @settings(max_examples=100)
    def test_segments_partition_window(self, data):
        tl, start, end, _ = data
        segments = list(tl.segments(start, end))
        assert segments[0][0] == start
        assert segments[-1][1] == end
        for left, right in zip(segments, segments[1:]):
            assert left[1] == right[0]


class TestBooleanTimeline:
    def _make(self):
        tl = BooleanTimeline()
        tl.set(100, True)
        tl.set(200, False)
        tl.set(300, True)
        return tl

    def test_true_intervals(self):
        assert self._make().true_intervals(0, 400) == [(100, 200), (300, 400)]

    def test_ever_true(self):
        tl = self._make()
        assert tl.ever_true(150, 160)
        assert not tl.ever_true(200, 300)

    def test_total_true(self):
        assert self._make().total_true(0, 400) == 200

    def test_initially_false(self):
        assert not BooleanTimeline().ever_true(0, 100)


def test_merge_change_times():
    a = Timeline()
    a.set(1, "x")
    a.set(5, "y")
    b = Timeline()
    b.set(3, "z")
    b.set(5, "w")
    assert merge_change_times([a, b]) == [1, 3, 5]
