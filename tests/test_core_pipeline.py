"""Tests for the pipeline steps and the end-to-end run."""

import pytest

from repro.core.ctdetect import CTDetector
from repro.core.feed import FeedRecord, PublicFeed
from repro.core.pipeline import DarkDNSPipeline, PipelineConfig, run_pipeline
from repro.core.rdap_collect import RDAPCollector, RDAPCollectorConfig
from repro.core.records import Candidate
from repro.core.transient import TransientClassifier
from repro.core.validate import Validator, ValidatorConfig
from repro.dnscore.psl import BuggyPublicSuffixList
from repro.registry.rdap import RDAPFailure, RDAPResult
from repro.simtime.clock import DAY, HOUR, MINUTE


def make_candidate(domain="x.com", seen=10_000):
    return Candidate(domain=domain, tld=domain.rsplit(".", 1)[1],
                     ct_seen_at=seen, cert_serial=1, issuer="CA",
                     log_id="log", reused_validation=False)


class TestCTDetector:
    def test_filters_domains_in_published_snapshot(self, tiny_world):
        detector = CTDetector(tiny_world.archive,
                              tiny_world.registries.tlds())
        candidates = detector.run(tiny_world.certstream,
                                  tiny_world.window.start,
                                  tiny_world.window.end)
        assert detector.stats.filtered_in_zone > 0
        assert len(candidates) == detector.stats.candidates
        # No candidate may be present in the latest published snapshot
        # at its observation time.
        for domain, candidate in list(candidates.items())[:100]:
            assert not tiny_world.archive.in_latest_published(
                domain, candidate.ct_seen_at)

    def test_deduplicates_by_domain(self, tiny_world):
        detector = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        events = list(tiny_world.certstream.events())
        detector.process_event(events[0])
        before = detector.stats.candidates
        detector.process_event(events[0])
        assert detector.stats.candidates == before
        assert detector.stats.duplicates >= 1

    def test_unknown_tld_skipped(self, tiny_world):
        detector = CTDetector(tiny_world.archive, known_tlds=["net"])
        detector.run(tiny_world.certstream, tiny_world.window.start,
                     tiny_world.window.end)
        assert detector.stats.candidates == 0
        assert detector.stats.unknown_tld > 0

    def test_buggy_psl_misextracts(self, tiny_world):
        good = CTDetector(tiny_world.archive, tiny_world.registries.tlds())
        buggy = CTDetector(tiny_world.archive, tiny_world.registries.tlds(),
                           psl=BuggyPublicSuffixList())
        good_set = set(good.run(tiny_world.certstream))
        buggy_set = set(buggy.run(tiny_world.certstream))
        # Single-label gTLDs only in the tiny world: results identical,
        # proving misextraction needs multi-label suffixes.
        assert good_set == buggy_set


class TestRDAPCollector:
    def test_query_time_within_bounds(self, tiny_world):
        collector = RDAPCollector(tiny_world.registries,
                                  RDAPCollectorConfig(60, 600))
        candidate = make_candidate(seen=50_000)
        ts = collector.query_time(candidate)
        assert 50_060 <= ts <= 50_600

    def test_collect_orders_by_detection(self, tiny_world, tiny_result):
        assert set(tiny_result.rdap) == set(tiny_result.candidates)


class TestValidator:
    def test_ok_new_domain(self):
        validator = Validator()
        candidate = make_candidate(seen=10_000)
        record_result = RDAPResult(
            "x.com", 10_100,
            record=__import__("repro.registry.rdap", fromlist=["RDAPRecord"])
            .RDAPRecord("x.com", "H", 9_000, "GoDaddy", 146, ("active",),
                        10_100))
        verdict = validator.verdict(candidate, record_result)
        assert verdict.rdap_ok
        assert verdict.detection_delay == 1_000
        assert not verdict.misclassified
        assert verdict.consistent_24h

    def test_old_domain_misclassified(self):
        from repro.registry.rdap import RDAPRecord
        validator = Validator(ValidatorConfig(newness_threshold=4 * DAY))
        candidate = make_candidate(seen=10 * DAY)
        result = RDAPResult("x.com", 10 * DAY, record=RDAPRecord(
            "x.com", "H", 1 * DAY, "GoDaddy", 146, ("active",), 10 * DAY))
        verdict = validator.verdict(candidate, result)
        assert verdict.misclassified
        assert not verdict.consistent_24h

    def test_failed_rdap(self):
        validator = Validator()
        verdict = validator.verdict(make_candidate(),
                                    RDAPResult("x.com", 1,
                                               failure=RDAPFailure.NOT_FOUND))
        assert not verdict.rdap_ok
        assert verdict.detection_delay is None

    def test_missing_rdap(self):
        verdict = Validator().verdict(make_candidate(), None)
        assert not verdict.rdap_ok


class TestTransientClassifier:
    def test_ghost_is_transient(self, tiny_world):
        classifier = TransientClassifier(tiny_world.registries,
                                         tiny_world.archive)
        assert classifier.is_transient_candidate("never-registered.com")

    def test_longlived_not_transient(self, tiny_world, tiny_result):
        classifier = TransientClassifier(tiny_world.registries,
                                         tiny_world.archive)
        long_lived = next(
            d for d in tiny_result.candidates
            if (lc := tiny_world.registries.find_lifecycle(d)) is not None
            and lc.removed_at is None)
        assert not classifier.is_transient_candidate(long_lived)


class TestPublicFeed:
    def test_publish_and_order(self):
        feed = PublicFeed()
        feed.publish(make_candidate("b.com", seen=200))
        feed.publish(make_candidate("a.com", seen=100))
        feed.finalize()
        assert [r.domain for r in feed] == ["a.com", "b.com"]

    def test_jsonl_roundtrip(self, tmp_path):
        feed = PublicFeed()
        feed.publish(make_candidate("a.com", seen=100))
        feed.publish(make_candidate("b.xyz", seen=200))
        path = tmp_path / "feed.jsonl"
        assert feed.to_jsonl(path) == 2
        loaded = PublicFeed.from_jsonl(path)
        assert loaded.domains == {"a.com", "b.xyz"}

    def test_records_on_day(self):
        feed = PublicFeed()
        feed.publish(make_candidate("a.com", seen=100))
        feed.publish(make_candidate("b.com", seen=2 * DAY + 5))
        assert {r.domain for r in feed.records_on_day(0)} == {"a.com"}
        assert feed.domains_on_day(2 * DAY) == {"b.com"}

    def test_record_json_fields(self):
        record = FeedRecord("a.com", "com", 100)
        parsed = FeedRecord.from_json(record.to_json())
        assert parsed == record


class TestEndToEnd:
    def test_pipeline_invariants(self, small_world, small_result):
        result = small_result
        # Every candidate got an RDAP attempt and a verdict.
        assert set(result.rdap) == set(result.candidates)
        assert set(result.verdicts) == set(result.candidates)
        # Transient partitions are disjoint and cover the candidates.
        parts = (result.confirmed_transients, result.rdap_failed_transients,
                 result.misclassified_transients)
        for i, a in enumerate(parts):
            for b in parts[i + 1:]:
                assert not a & b
        assert (result.confirmed_transients | result.rdap_failed_transients
                | result.misclassified_transients) == result.transient_candidates
        assert result.transient_candidates <= set(result.candidates)

    def test_confirmed_transients_truly_absent_from_snapshots(
            self, small_world, small_result):
        for domain in list(small_result.confirmed_transients)[:100]:
            lifecycle = small_world.registries.find_lifecycle(domain)
            assert lifecycle is not None
            assert not small_world.archive.appears_ever(lifecycle)

    def test_ghosts_fail_rdap(self, small_world, small_result):
        ghosts = [d for d in small_result.transient_candidates
                  if small_world.registries.find_lifecycle(d) is None]
        assert ghosts, "scenario must produce ghost candidates"
        for domain in ghosts:
            assert domain in small_result.rdap_failed_transients

    def test_feed_covers_candidates(self, small_world):
        pipeline = DarkDNSPipeline(small_world)
        result = pipeline.run()
        assert pipeline.feed.domains == set(result.candidates)

    def test_broker_topics_populated(self, small_world, small_result):
        from repro.bus.broker import (TOPIC_CANDIDATES, TOPIC_FEED,
                                      TOPIC_OBSERVATIONS, TOPIC_RDAP)
        broker = small_world.broker
        for topic in (TOPIC_CANDIDATES, TOPIC_RDAP, TOPIC_OBSERVATIONS,
                      TOPIC_FEED):
            assert broker.topic(topic).total_messages() > 0

    def test_stats_consistent(self, small_result):
        stats = small_result.stats
        assert stats["candidates"] == len(small_result.candidates)
        assert stats["transient_candidates"] == len(
            small_result.transient_candidates)
        assert stats["rdap_failures"] <= stats["rdap_queries"]

    def test_detection_delays_mostly_positive(self, small_result):
        delays = list(small_result.detection_delays().values())
        positive = sum(1 for d in delays if d > 0)
        assert positive / len(delays) > 0.95

    def test_monitor_can_be_disabled(self, tiny_world):
        result = run_pipeline(tiny_world,
                              PipelineConfig(run_monitor=False))
        assert result.monitors == {}

    def test_loop_strategy_small(self, tiny_world):
        from repro.core.monitor import MonitorConfig
        config = PipelineConfig(
            monitor_strategy="loop",
            monitor=MonitorConfig(probe_interval=30 * MINUTE,
                                  duration=2 * HOUR))
        result = run_pipeline(tiny_world, config)
        assert result.monitors
