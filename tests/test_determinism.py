"""End-to-end determinism: same seed ⇒ bit-identical results."""

import pytest

from repro.analysis.report import full_report
from repro.core.pipeline import run_pipeline
from repro.workload.scenario import ScenarioConfig, build_world


CONFIG = ScenarioConfig(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
                        include_cctld=False)


@pytest.fixture(scope="module")
def run_pair():
    first = run_pipeline(build_world(CONFIG))
    second = run_pipeline(build_world(CONFIG))
    return first, second


class TestDeterminism:
    def test_candidate_sets_identical(self, run_pair):
        first, second = run_pair
        assert set(first.candidates) == set(second.candidates)
        for domain in first.candidates:
            assert (first.candidates[domain].ct_seen_at
                    == second.candidates[domain].ct_seen_at)

    def test_rdap_outcomes_identical(self, run_pair):
        first, second = run_pair
        for domain in first.rdap:
            a, b = first.rdap[domain], second.rdap[domain]
            assert a.ok == b.ok and a.failure == b.failure

    def test_transient_sets_identical(self, run_pair):
        first, second = run_pair
        assert first.confirmed_transients == second.confirmed_transients
        assert first.rdap_failed_transients == second.rdap_failed_transients

    def test_monitor_reports_identical(self, run_pair):
        first, second = run_pair
        for domain in list(first.monitors)[:200]:
            a, b = first.monitors[domain], second.monitors[domain]
            assert a == b

    def test_stats_identical(self, run_pair):
        first, second = run_pair
        assert first.stats == second.stats

    def test_reports_identical(self, run_pair):
        first, second = run_pair
        world = build_world(CONFIG)
        # Rendering must be stable too (no dict-order leakage).
        text_a = "\n".join(r.render() for r in full_report(
            world, first, include_nod=False))
        text_b = "\n".join(r.render() for r in full_report(
            world, second, include_nod=False))
        assert text_a == text_b
