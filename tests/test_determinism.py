"""End-to-end determinism: same seed ⇒ bit-identical results."""

from dataclasses import replace

import pytest

from repro.analysis.report import full_report
from repro.core.pipeline import run_pipeline
from repro.workload.scenario import (
    ScenarioConfig,
    build_world,
    world_fingerprint,
)


CONFIG = ScenarioConfig(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
                        include_cctld=False)

#: Golden world fingerprints.  They pin every sampled value in a world:
#: any optimization that perturbs a single draw — one extra RNG call,
#: one reordered weighted pick, one changed hash — changes these
#: digests and fails the suite.  If a future PR *intends* to change
#: sampling, re-record via
#: ``PYTHONPATH=src python -c "from repro.workload.scenario import *; \
#: print(world_fingerprint(build_world(<config>)))"`` and say so in the
#: PR description.
#:
#: Fingerprint epoch 2: re-recorded for the per-``(tld, month)`` stream
#: relayout (docs/determinism.md "Re-recording goldens") — month-scoped
#: stream paths and name namespaces deliberately changed every digest.
GOLDEN_FINGERPRINTS = {
    "gtld_small": (
        ScenarioConfig(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
                       include_cctld=False),
        "f43497fbdd28f526f290d8e71eaa881d",
    ),
    "with_cctld": (
        ScenarioConfig(seed=11, scale=1 / 4000, tlds=["com", "shop"],
                       include_cctld=True, cctld_scale=1 / 100),
        "ca5aec293743bc948ebd8f8996d12028",
    ),
}


class TestWorldFingerprintGolden:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FINGERPRINTS))
    def test_fingerprint_matches_golden(self, name):
        config, expected = GOLDEN_FINGERPRINTS[name]
        assert world_fingerprint(build_world(config)) == expected

    def test_fingerprint_stable_across_builds(self):
        config, _ = GOLDEN_FINGERPRINTS["gtld_small"]
        assert (world_fingerprint(build_world(config))
                == world_fingerprint(build_world(config)))

    def test_fingerprint_seed_sensitive(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        from dataclasses import replace
        other = world_fingerprint(build_world(replace(config, seed=22)))
        assert other != expected


class TestMultiCoreBuildIsBitIdentical:
    """The multi-core world build's headline guarantee: ``parallel=N``
    is a pure wall-clock lever — every sampled value, every insertion
    order, every counter matches the serial build exactly (see
    docs/determinism.md for why).
    """

    def test_golden_fingerprint_holds_under_parallel_build(self):
        # The committed golden was recorded from a serial build; a
        # 3-worker build must reproduce the identical digest.
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(
            build_world(replace(config, parallel=3))) == expected

    @pytest.mark.parametrize("inv_scale", [500, 100])
    def test_jobs1_equals_jobs4(self, inv_scale):
        # The acceptance points: 1/500 and 1/100 scale, jobs=1 vs
        # jobs=4.  The ccTLD population stays on at 1/500 so the
        # serial-after-merge interplay is covered too.
        config = ScenarioConfig(seed=7, scale=1.0 / inv_scale,
                                include_cctld=(inv_scale == 500))
        serial = build_world(config)
        parallel = build_world(replace(config, parallel=4))
        assert world_fingerprint(serial) == world_fingerprint(parallel)
        assert serial.stats == parallel.stats
        # Insertion order is part of the contract (analyses iterate
        # lifecycles in registration order).
        for reg_s, reg_p in zip(serial.registries, parallel.registries):
            assert reg_s.tld == reg_p.tld
            assert ([lc.domain for lc in reg_s.lifecycles()]
                    == [lc.domain for lc in reg_p.lifecycles()])
            # SOA serials derive from the merged dirty ticks.
            end = config.window.end
            assert reg_s.serial_at(end) == reg_p.serial_at(end)

    def test_jobs_zero_means_auto(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(
            build_world(replace(config, parallel=0))) == expected


class TestScenarioIdentity:
    """The scenario engine's zero-cost guarantee: ``scenario="baseline"``
    (the identity plugin) builds the same bytes as ``scenario=None`` —
    plugin hooks draw only from dedicated streams the base build never
    touches, so an identity plugin cannot perturb a single value.
    """

    def test_baseline_scenario_reproduces_the_golden(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(build_world(
            replace(config, scenario="baseline"))) == expected

    def test_baseline_equals_none_under_parallel_build(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(build_world(
            replace(config, scenario="baseline", parallel=2))) == expected


@pytest.fixture(scope="module")
def run_pair():
    first = run_pipeline(build_world(CONFIG))
    second = run_pipeline(build_world(CONFIG))
    return first, second


class TestDeterminism:
    def test_candidate_sets_identical(self, run_pair):
        first, second = run_pair
        assert set(first.candidates) == set(second.candidates)
        for domain in first.candidates:
            assert (first.candidates[domain].ct_seen_at
                    == second.candidates[domain].ct_seen_at)

    def test_rdap_outcomes_identical(self, run_pair):
        first, second = run_pair
        for domain in first.rdap:
            a, b = first.rdap[domain], second.rdap[domain]
            assert a.ok == b.ok and a.failure == b.failure

    def test_transient_sets_identical(self, run_pair):
        first, second = run_pair
        assert first.confirmed_transients == second.confirmed_transients
        assert first.rdap_failed_transients == second.rdap_failed_transients

    def test_monitor_reports_identical(self, run_pair):
        first, second = run_pair
        for domain in list(first.monitors)[:200]:
            a, b = first.monitors[domain], second.monitors[domain]
            assert a == b

    def test_stats_identical(self, run_pair):
        first, second = run_pair
        assert first.stats == second.stats

    def test_reports_identical(self, run_pair):
        first, second = run_pair
        world = build_world(CONFIG)
        # Rendering must be stable too (no dict-order leakage).
        text_a = "\n".join(r.render() for r in full_report(
            world, first, include_nod=False))
        text_b = "\n".join(r.render() for r in full_report(
            world, second, include_nod=False))
        assert text_a == text_b


class TestInstrumentedBuildMatchesGolden:
    """The observability acceptance gate: a multi-core build with the
    tracer *and* the sampling profiler running must reproduce the
    committed golden fingerprint bit-identically — telemetry draws no
    RNG and never perturbs a sampled value — and the parent tracer must
    hold the stitched per-worker ``build.populate_shard`` spans.
    """

    @staticmethod
    def _pinned():
        import json
        from pathlib import Path
        path = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "BENCH_worldgen.json")
        return json.loads(path.read_text())

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_profiled_parallel_build_hits_golden(self, jobs):
        from repro.obs.profiler import SamplingProfiler
        from repro.obs.spans import tracer

        pinned = self._pinned()
        config = ScenarioConfig(
            seed=pinned["seed"], scale=1.0 / pinned["inv_scale"],
            include_cctld=pinned["include_cctld"], parallel=jobs)
        trace = tracer()
        trace.reset()
        profiler = SamplingProfiler(interval=0.002).start()
        try:
            world = build_world(config)
        finally:
            profiler.stop()

        # Bit-identical to the committed serial golden, telemetry on.
        assert world_fingerprint(world) == pinned["fingerprint"]

        # Every worker's populate spans were stitched into the parent:
        # one span per (tld, month) shard, three months per TLD.
        from repro.workload import calibration as cal

        totals = trace.phase_totals()
        assert "build.populate_shard" in totals
        populate = [s for s in trace.spans
                    if s.name == "build.populate_shard"]
        assert len(populate) == len(cal.MONTH_KEYS) * len(world.targets)
        assert totals["build.populate_shard"]["count"] == len(populate)
        assert ({(s.labels["tld"], s.labels["month"]) for s in populate}
                == {(tld, month) for tld in world.targets
                    for month in cal.MONTH_KEYS})
        assert all("worker" in s.labels for s in populate)
        # Re-rooted under the one merge span, one level down.
        (merge,) = [s for s in trace.spans
                    if s.name == "build.merge_shards"]
        assert all(s.parent_id == merge.span_id for s in populate)
        assert all(s.depth == merge.depth + 1 for s in populate)
        # Per-shard wall time survived the stitch (straggler evidence).
        assert all(s.wall_sec > 0 for s in populate)
        # Every worker process contributed spans.
        workers = {s.labels["worker"] for s in populate}
        assert len(workers) == min(jobs, len(populate))
