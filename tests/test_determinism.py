"""End-to-end determinism: same seed ⇒ bit-identical results."""

from dataclasses import replace

import pytest

from repro.analysis.report import full_report
from repro.core.pipeline import run_pipeline
from repro.workload.scenario import (
    ScenarioConfig,
    build_world,
    world_fingerprint,
)


CONFIG = ScenarioConfig(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
                        include_cctld=False)

#: Golden world fingerprints, recorded from the *pre-fast-path* (seed,
#: PR 2 tip) implementation.  They pin every sampled value in a world:
#: any optimization that perturbs a single draw — one extra RNG call,
#: one reordered weighted pick, one changed hash — changes these
#: digests and fails the suite.  If a future PR *intends* to change
#: sampling, re-record via
#: ``PYTHONPATH=src python -c "from repro.workload.scenario import *; \
#: print(world_fingerprint(build_world(<config>)))"`` and say so in the
#: PR description.
GOLDEN_FINGERPRINTS = {
    "gtld_small": (
        ScenarioConfig(seed=21, scale=1 / 5000, tlds=["com", "xyz", "top"],
                       include_cctld=False),
        "67d1e472d09685d135ada67302d81b18",
    ),
    "with_cctld": (
        ScenarioConfig(seed=11, scale=1 / 4000, tlds=["com", "shop"],
                       include_cctld=True, cctld_scale=1 / 100),
        "5f7aaf744e094abeec710cdf21857226",
    ),
}


class TestWorldFingerprintGolden:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FINGERPRINTS))
    def test_fingerprint_matches_golden(self, name):
        config, expected = GOLDEN_FINGERPRINTS[name]
        assert world_fingerprint(build_world(config)) == expected

    def test_fingerprint_stable_across_builds(self):
        config, _ = GOLDEN_FINGERPRINTS["gtld_small"]
        assert (world_fingerprint(build_world(config))
                == world_fingerprint(build_world(config)))

    def test_fingerprint_seed_sensitive(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        from dataclasses import replace
        other = world_fingerprint(build_world(replace(config, seed=22)))
        assert other != expected


class TestMultiCoreBuildIsBitIdentical:
    """The multi-core world build's headline guarantee: ``parallel=N``
    is a pure wall-clock lever — every sampled value, every insertion
    order, every counter matches the serial build exactly (see
    docs/determinism.md for why).
    """

    def test_golden_fingerprint_holds_under_parallel_build(self):
        # The committed golden was recorded from a serial build; a
        # 3-worker build must reproduce the identical digest.
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(
            build_world(replace(config, parallel=3))) == expected

    @pytest.mark.parametrize("inv_scale", [500, 100])
    def test_jobs1_equals_jobs4(self, inv_scale):
        # The acceptance points: 1/500 and 1/100 scale, jobs=1 vs
        # jobs=4.  The ccTLD population stays on at 1/500 so the
        # serial-after-merge interplay is covered too.
        config = ScenarioConfig(seed=7, scale=1.0 / inv_scale,
                                include_cctld=(inv_scale == 500))
        serial = build_world(config)
        parallel = build_world(replace(config, parallel=4))
        assert world_fingerprint(serial) == world_fingerprint(parallel)
        assert serial.stats == parallel.stats
        # Insertion order is part of the contract (analyses iterate
        # lifecycles in registration order).
        for reg_s, reg_p in zip(serial.registries, parallel.registries):
            assert reg_s.tld == reg_p.tld
            assert ([lc.domain for lc in reg_s.lifecycles()]
                    == [lc.domain for lc in reg_p.lifecycles()])
            # SOA serials derive from the merged dirty ticks.
            end = config.window.end
            assert reg_s.serial_at(end) == reg_p.serial_at(end)

    def test_jobs_zero_means_auto(self):
        config, expected = GOLDEN_FINGERPRINTS["gtld_small"]
        assert world_fingerprint(
            build_world(replace(config, parallel=0))) == expected


@pytest.fixture(scope="module")
def run_pair():
    first = run_pipeline(build_world(CONFIG))
    second = run_pipeline(build_world(CONFIG))
    return first, second


class TestDeterminism:
    def test_candidate_sets_identical(self, run_pair):
        first, second = run_pair
        assert set(first.candidates) == set(second.candidates)
        for domain in first.candidates:
            assert (first.candidates[domain].ct_seen_at
                    == second.candidates[domain].ct_seen_at)

    def test_rdap_outcomes_identical(self, run_pair):
        first, second = run_pair
        for domain in first.rdap:
            a, b = first.rdap[domain], second.rdap[domain]
            assert a.ok == b.ok and a.failure == b.failure

    def test_transient_sets_identical(self, run_pair):
        first, second = run_pair
        assert first.confirmed_transients == second.confirmed_transients
        assert first.rdap_failed_transients == second.rdap_failed_transients

    def test_monitor_reports_identical(self, run_pair):
        first, second = run_pair
        for domain in list(first.monitors)[:200]:
            a, b = first.monitors[domain], second.monitors[domain]
            assert a == b

    def test_stats_identical(self, run_pair):
        first, second = run_pair
        assert first.stats == second.stats

    def test_reports_identical(self, run_pair):
        first, second = run_pair
        world = build_world(CONFIG)
        # Rendering must be stable too (no dict-order leakage).
        text_a = "\n".join(r.render() for r in full_report(
            world, first, include_nod=False))
        text_b = "\n".join(r.render() for r in full_report(
            world, second, include_nod=False))
        assert text_a == text_b
