"""Tests for the topic broker and the columnar store."""

import pytest

from repro.bus.broker import Broker, TOPIC_CANDIDATES
from repro.bus.columnar import ColumnStore, Dataset
from repro.errors import BusError, OffsetError, UnknownTopicError


class TestBroker:
    def test_create_and_produce(self):
        broker = Broker()
        broker.create_topic("events", partitions=2)
        message = broker.produce("events", "key1", {"v": 1}, timestamp=100)
        assert message.offset == 0
        assert broker.topic("events").total_messages() == 1

    def test_duplicate_topic_rejected(self):
        broker = Broker()
        broker.create_topic("t")
        with pytest.raises(BusError):
            broker.create_topic("t")

    def test_unknown_topic(self):
        with pytest.raises(UnknownTopicError):
            Broker().topic("nope")

    def test_ensure_topic(self):
        broker = Broker()
        t1 = broker.ensure_topic("x")
        assert broker.ensure_topic("x") is t1

    def test_key_routing_is_stable(self):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        p1 = broker.produce("t", "example.com", 1, 0).partition
        p2 = broker.produce("t", "example.com", 2, 1).partition
        assert p1 == p2

    def test_poll_commits_and_orders(self):
        broker = Broker()
        broker.create_topic("t", partitions=3)
        for i in range(10):
            broker.produce("t", f"k{i}", i, timestamp=i)
        batch = broker.poll("group", "t")
        assert [m.value for m in batch] == list(range(10))
        assert broker.poll("group", "t") == []
        assert broker.lag("group", "t") == 0

    def test_independent_consumer_groups(self):
        broker = Broker()
        broker.create_topic("t", partitions=1)
        broker.produce("t", "k", 1, 0)
        assert len(broker.poll("g1", "t")) == 1
        assert len(broker.poll("g2", "t")) == 1

    def test_poll_respects_max_messages(self):
        broker = Broker()
        broker.create_topic("t", partitions=1)
        for i in range(10):
            broker.produce("t", "k", i, i)
        assert len(broker.poll("g", "t", max_messages=4)) == 4
        assert broker.lag("g", "t") == 6

    def test_commit_bounds(self):
        broker = Broker()
        broker.create_topic("t", partitions=1)
        broker.produce("t", "k", 1, 0)
        with pytest.raises(OffsetError):
            broker.commit("g", "t", 0, 5)

    def test_all_messages_sorted_by_time(self):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        for i, ts in enumerate([50, 10, 30, 20]):
            broker.produce("t", f"k{i}", i, ts)
        times = [m.timestamp for m in broker.topic("t").all_messages()]
        assert times == sorted(times)

    def test_pipeline_topic_names(self):
        assert TOPIC_CANDIDATES == "nrd.candidates"

    def test_rejects_zero_partitions(self):
        broker = Broker()
        with pytest.raises(BusError):
            broker.create_topic("t", partitions=0)


class TestColumnStore:
    def _store(self):
        store = ColumnStore("obs", ["domain", "tld", "count"])
        store.append({"domain": "a.com", "tld": "com", "count": 1})
        store.append({"domain": "b.xyz", "tld": "xyz", "count": 2})
        return store

    def test_append_and_len(self):
        assert len(self._store()) == 2

    def test_missing_column_is_none(self):
        store = ColumnStore("t", ["a", "b"])
        store.append({"a": 1})
        assert store.row(0) == {"a": 1, "b": None}

    def test_extra_column_rejected(self):
        store = ColumnStore("t", ["a"])
        with pytest.raises(BusError):
            store.append({"a": 1, "zzz": 2})

    def test_requires_columns(self):
        with pytest.raises(BusError):
            ColumnStore("t", [])

    def test_column_access(self):
        assert self._store().column("tld") == ["com", "xyz"]
        with pytest.raises(BusError):
            self._store().column("nope")

    def test_rows_roundtrip(self):
        rows = list(self._store().rows())
        assert rows[1]["domain"] == "b.xyz"

    def test_filter(self):
        filtered = self._store().filter(lambda r: r["tld"] == "com")
        assert len(filtered) == 1

    def test_select(self):
        assert self._store().select("domain", "count") == [
            ("a.com", 1), ("b.xyz", 2)]

    def test_group_count(self):
        store = self._store()
        store.append({"domain": "c.com", "tld": "com", "count": 3})
        assert store.group_count("tld") == {"com": 2, "xyz": 1}

    def test_save_load_roundtrip(self, tmp_path):
        store = self._store()
        path = tmp_path / "obs.json"
        store.save(path)
        loaded = ColumnStore.load(path)
        assert list(loaded.rows()) == list(store.rows())
        assert loaded.name == "obs"

    def test_extend(self):
        store = ColumnStore("t", ["a"])
        count = store.extend(iter([{"a": i} for i in range(5)]))
        assert count == 5 and len(store) == 5


class TestDataset:
    def test_create_get(self):
        ds = Dataset()
        table = ds.create("t1", ["a"])
        assert ds.get("t1") is table
        assert ds.ensure("t1", ["a"]) is table

    def test_duplicate_rejected(self):
        ds = Dataset()
        ds.create("t", ["a"])
        with pytest.raises(BusError):
            ds.create("t", ["a"])

    def test_unknown_rejected(self):
        with pytest.raises(BusError):
            Dataset().get("none")

    def test_save_all(self, tmp_path):
        ds = Dataset()
        ds.create("x", ["a"]).append({"a": 1})
        ds.create("y", ["b"]).append({"b": 2})
        ds.save_all(tmp_path)
        assert (tmp_path / "x.json").exists()
        assert (tmp_path / "y.json").exists()


class TestBrokerFastPath:
    def test_produce_many_equals_sequential_produce(self):
        items = [(f"key{i % 7}", {"i": i}, 100 + i) for i in range(50)]
        a, b = Broker(), Broker()
        for key, value, ts in items:
            a.produce("t", key, value, ts)
        assert b.produce_many("t", items) == 50
        for pa, pb in zip(a.topic("t").partitions, b.topic("t").partitions):
            la = pa.read(0, pa.end_offset)
            lb = pb.read(0, pb.end_offset)
            assert [(m.key, m.offset, m.timestamp) for m in la] == \
                   [(m.key, m.offset, m.timestamp) for m in lb]

    def test_all_messages_ordered_log_uses_merge(self):
        broker = Broker()
        for i in range(40):
            broker.produce("t", f"k{i}", i, timestamp=1000 + i)
        topic = broker.topic("t")
        assert all(p.time_ordered for p in topic.partitions)
        messages = topic.all_messages()
        keys = [(m.timestamp, m.partition, m.offset) for m in messages]
        assert keys == sorted(keys)
        assert len(messages) == 40

    def test_all_messages_out_of_order_falls_back_to_sort(self):
        broker = Broker(default_partitions=2)
        broker.produce("t", "a", 1, timestamp=500)
        broker.produce("t", "b", 2, timestamp=100)  # clock going backwards
        broker.produce("t", "c", 3, timestamp=300)
        topic = broker.topic("t")
        messages = topic.all_messages()
        keys = [(m.timestamp, m.partition, m.offset) for m in messages]
        assert keys == sorted(keys)
        assert len(messages) == 3

    def test_single_partition_ordered_short_circuit(self):
        broker = Broker(default_partitions=1)
        for i in range(5):
            broker.produce("t", "k", i, timestamp=i)
        assert [m.value for m in broker.topic("t").all_messages()] == \
               [0, 1, 2, 3, 4]
