"""Tests for DomainLifecycle state machines."""

import pytest

from repro.errors import ConfigError
from repro.registry.lifecycle import (
    AbuseKind,
    DomainLifecycle,
    DomainStatus,
    RemovalReason,
)
from repro.simtime.clock import DAY, HOUR
from repro.simtime.timeline import Timeline


def make_lifecycle(created=1000, zone_added=1060, removed=None,
                   zone_removed=None, **kwargs):
    lifecycle = DomainLifecycle(
        domain="test.com", tld="com", registrar="GoDaddy",
        created_at=created, zone_added_at=zone_added,
        removed_at=removed, zone_removed_at=zone_removed, **kwargs)
    if zone_added is not None:
        lifecycle.ns_timeline.set(zone_added, frozenset({"ns1.h.net"}))
        lifecycle.a_timeline.set(zone_added, ("192.0.2.1",))
    return lifecycle


class TestValidation:
    def test_rejects_wrong_tld(self):
        with pytest.raises(ConfigError):
            DomainLifecycle(domain="a.net", tld="com", registrar="X",
                            created_at=0, zone_added_at=None)

    def test_rejects_zone_add_before_creation(self):
        with pytest.raises(ConfigError):
            DomainLifecycle(domain="a.com", tld="com", registrar="X",
                            created_at=100, zone_added_at=50)

    def test_rejects_zone_removal_before_removal(self):
        with pytest.raises(ConfigError):
            DomainLifecycle(domain="a.com", tld="com", registrar="X",
                            created_at=0, zone_added_at=10,
                            removed_at=100, zone_removed_at=50)


class TestZoneState:
    def test_in_zone_interval(self):
        lc = make_lifecycle(zone_removed=5000, removed=4990)
        assert not lc.in_zone_at(1059)
        assert lc.in_zone_at(1060)
        assert lc.in_zone_at(4999)
        assert not lc.in_zone_at(5000)

    def test_never_published(self):
        lc = make_lifecycle(zone_added=None)
        assert not lc.in_zone_at(10 ** 9)
        assert lc.zone_lifetime == 0

    def test_registered_vs_zone_views_differ(self):
        """RDAP (registration object) and DNS (zone) disagree between
        removal and the next provisioning run."""
        lc = make_lifecycle(removed=2000, zone_removed=2060)
        assert not lc.registered_at_time(2000)
        assert lc.in_zone_at(2030)

    def test_nameservers_at(self):
        lc = make_lifecycle()
        assert lc.nameservers_at(2000) == frozenset({"ns1.h.net"})
        assert lc.nameservers_at(100) is None

    def test_addresses_at(self):
        lc = make_lifecycle()
        assert lc.addresses_at(2000) == ("192.0.2.1",)
        assert lc.addresses_at(2000, family=6) == ()

    def test_lame_never_resolves_addresses(self):
        lc = make_lifecycle(lame=True)
        assert lc.addresses_at(2000) is None
        assert lc.nameservers_at(2000) is not None  # delegation exists


class TestStatus:
    def test_active(self):
        assert make_lifecycle().status_at(2000) is DomainStatus.ACTIVE

    def test_deleted(self):
        lc = make_lifecycle(removed=3000, zone_removed=3060)
        assert lc.status_at(3500) is DomainStatus.DELETED

    def test_pre_creation_deleted_view(self):
        assert make_lifecycle().status_at(10) is DomainStatus.DELETED

    def test_server_hold(self):
        lc = make_lifecycle(held=True)
        assert lc.status_at(2000) is DomainStatus.SERVER_HOLD


class TestLifetimes:
    def test_lifetime(self):
        lc = make_lifecycle(removed=1000 + 6 * HOUR, zone_removed=1000 + 6 * HOUR + 60)
        assert lc.lifetime == 6 * HOUR
        assert lc.died_within(7 * HOUR)
        assert not lc.died_within(5 * HOUR)

    def test_alive_has_no_lifetime(self):
        assert make_lifecycle().lifetime is None
        assert not make_lifecycle().removed_within_a_day

    def test_removed_within_a_day(self):
        lc = make_lifecycle(removed=1000 + DAY, zone_removed=1000 + DAY + 60)
        assert lc.removed_within_a_day
        lc2 = make_lifecycle(removed=1000 + DAY + 1, zone_removed=1000 + DAY + 90)
        assert not lc2.removed_within_a_day

    def test_zone_lifetime(self):
        lc = make_lifecycle(removed=5000, zone_removed=6060)
        assert lc.zone_lifetime == 5000

    def test_ns_changed_within(self):
        lc = make_lifecycle()
        assert not lc.ns_changed_within(24 * HOUR)
        lc.ns_timeline.set(1060 + 2 * HOUR, frozenset({"ns1.other.net"}))
        assert lc.ns_changed_within(24 * HOUR)
        assert not lc.ns_changed_within(1 * HOUR)


class TestRemovalReason:
    def test_malicious_signals(self):
        assert RemovalReason.ABUSE.is_malicious_signal
        assert RemovalReason.PAYMENT_FRAUD.is_malicious_signal
        assert not RemovalReason.DOMAIN_TASTING.is_malicious_signal
        assert not RemovalReason.EXPIRATION.is_malicious_signal

    def test_abuse_kind_str(self):
        assert str(AbuseKind.PHISHING) == "phishing"
