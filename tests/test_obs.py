"""Tests for the unified telemetry layer (repro.obs).

Covers the metric primitives and quantile edge cases (with property
tests), span nesting and exception paths, the Prometheus exposition
escaping/parse round-trip and lint, the standing observers (quiet on
the default world, firing on a registration burst), and the resolver
stats-reset semantics the registry gauges depend on.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import DarkDNSPipeline
from repro.dnscore.resolver import ResolverPool, ResolverPoolMetrics
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObserverSuite,
    RollingBaseline,
    SeriesObserver,
    SimpleProvider,
    Tracer,
    daily_counts,
    default_pipeline_suite,
    get_registry,
    lint_prometheus,
    observe_pipeline_result,
    parse_prometheus,
    to_json,
    to_prometheus,
    tracer,
)
from repro.obs.exposition import escape_label_value, unescape_label_value
from repro.obs.observers import (
    SCENARIO_EXPECTATIONS,
    check_expectations,
    observe_world,
)
from repro.workload.scenario import ScenarioConfig, build_world, world_fingerprint

_DAY = 86_400


# --------------------------------------------------------------------------
# Counter / Gauge primitives
# --------------------------------------------------------------------------

class TestCounter:

    def test_inc_and_value(self):
        c = Counter("hits", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counters_only_go_up(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_memoised(self):
        c = Counter("probes", labelnames=("tld",))
        assert c.labels("com") is c.labels(tld="com")
        c.labels("com").inc(3)
        c.labels("net").inc()
        assert [(child._labelvalues, child.value)
                for child in c.children()] == [(("com",), 3), (("net",), 1)]

    def test_labelled_parent_rejects_inc(self):
        c = Counter("probes", labelnames=("tld",))
        with pytest.raises(ValueError):
            c.inc()

    def test_label_arity_and_names_checked(self):
        c = Counter("probes", labelnames=("tld", "kind"))
        with pytest.raises(ValueError):
            c.labels("com")                       # missing one value
        with pytest.raises(ValueError):
            c.labels(tld="com", bogus="x")        # unknown keyword
        with pytest.raises(ValueError):
            c.labels("com", tld="com")            # both styles at once
        with pytest.raises(ValueError):
            Counter("bad", labelnames=("tld", "tld"))
        with pytest.raises(ValueError):
            Counter("bad", labelnames=("not ok",))

    def test_unlabelled_labels_rejected(self):
        with pytest.raises(ValueError):
            Counter("plain").labels("com")


class TestGauge:

    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_pull_gauge_reads_live_state(self):
        state = {"n": 1}
        g = Gauge("live")
        g.set_function(lambda: state["n"])
        assert g.value == 1
        state["n"] = 7
        assert g.value == 7
        g.set(0)                       # an explicit set drops the function
        state["n"] = 99
        assert g.value == 0

    def test_labelled_parent_holds_no_value(self):
        g = Gauge("fleet", labelnames=("stat",))
        with pytest.raises(ValueError):
            g.set(1)
        with pytest.raises(ValueError):
            _ = g.value
        g.labels("queries").set(3)
        assert g.labels("queries").value == 3


# --------------------------------------------------------------------------
# Histogram quantile edge cases (the satellite fix) + properties
# --------------------------------------------------------------------------

class TestHistogramQuantile:

    def test_empty_histogram_answers_zero(self):
        h = Histogram("lag", bounds=(1, 10, 60))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0
        assert h.mean == 0.0

    def test_single_overflow_observation_reports_own_value(self):
        h = Histogram("lag", bounds=(1, 10))
        h.observe(500)
        # Not infinity, not the last bound: the tracked maximum.
        assert h.quantile(0.5) == 500
        assert h.quantile(1.0) == 500

    def test_bounds_of_length_one(self):
        h = Histogram("lag", bounds=(10,))
        h.observe(3)
        assert h.quantile(0.5) == 3        # edge 10 capped at max
        h.observe(50)                      # overflow bucket
        assert h.quantile(1.0) == 50

    def test_quantile_zero_is_first_nonempty_bucket(self):
        h = Histogram("lag", bounds=(1, 10, 60))
        h.observe(5)
        h.observe(200)
        assert h.quantile(0.0) == 10       # 5 lands in the (1, 10] bucket

    def test_quantile_one_is_exact_max(self):
        h = Histogram("lag", bounds=(1, 10, 60))
        for value in (0.5, 2, 30, 59):
            h.observe(value)
        assert h.quantile(1.0) == 59

    def test_out_of_range_q_raises(self):
        h = Histogram("lag", bounds=(1,))
        for q in (-0.1, 1.1, 2):
            with pytest.raises(ValueError):
                h.quantile(q)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lag", bounds=())

    def test_snapshot_keys(self):
        h = Histogram("lag", bounds=(1, 10))
        h.observe(4)
        assert set(h.snapshot()) == {"count", "mean", "p50", "p95", "max"}

    @given(values=st.lists(
               st.floats(min_value=0.0, max_value=2.0 * _DAY,
                         allow_nan=False, allow_infinity=False),
               max_size=150),
           bounds=st.sets(
               st.sampled_from([1, 5, 10, 60, 300, 900, 3600, 21600, _DAY]),
               min_size=1, max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_quantile_invariants(self, values, bounds):
        h = Histogram("h", bounds=sorted(bounds))
        for value in values:
            h.observe(value)
        qs = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)
        estimates = [h.quantile(q) for q in qs]
        # Monotone in q, bounded by the observed range, exact at q=1.
        assert estimates == sorted(estimates)
        if values:
            assert h.quantile(1.0) == max(values)
            assert all(0.0 <= e <= max(values) for e in estimates)
            assert h.count == len(values)
        else:
            assert estimates == [0.0] * len(qs)


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

class TestRegistry:

    def test_register_snapshot_collect(self):
        registry = MetricsRegistry()
        c = Counter("hits", "hits total")
        c.inc(2)
        registry.register("demo", SimpleProvider(c))
        assert registry.groups() == ["demo"]
        assert registry.snapshot() == {"demo": {"hits": 2}}
        assert [(g, m.name) for g, m in registry.collect()] == [("demo", "hits")]

    def test_reregistering_replaces_the_provider(self):
        registry = MetricsRegistry()
        first, second = Counter("hits"), Counter("hits")
        second.inc(9)
        registry.register("demo", SimpleProvider(first))
        registry.register("demo", SimpleProvider(second))
        assert registry.snapshot() == {"demo": {"hits": 9}}
        assert registry.groups() == ["demo"]

    def test_provider_protocol_enforced(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register("demo", object())
        with pytest.raises(ValueError):
            registry.register("", SimpleProvider())

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register("demo", SimpleProvider())
        registry.unregister("demo")
        registry.unregister("demo")        # idempotent
        assert registry.groups() == []
        assert registry.group("demo") is None

    def test_simple_provider_snapshot_shapes(self):
        hist = Histogram("lag", bounds=(1, 10))
        hist.observe(4)
        labelled = Counter("probes", labelnames=("tld",))
        labelled.labels("com").inc(2)
        plain = Counter("hits")
        snap = SimpleProvider(hist, labelled, plain).snapshot()
        assert snap["lag"]["count"] == 1
        assert snap["probes"] == {"com": 2}
        assert snap["hits"] == 0

    def test_process_registry_carries_the_span_tracer(self):
        assert get_registry().group("spans") is tracer()


# --------------------------------------------------------------------------
# Spans: nesting, exceptions, sinks, provider protocol
# --------------------------------------------------------------------------

class TestSpans:

    def test_nesting_records_parent_and_depth(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert outer.span_id == 0 and outer.parent_id is None
        assert outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1
        # Finish order: the inner span completes first.
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_span_ids_are_sequential_not_random(self):
        t = Tracer()
        for _ in range(3):
            with t.span("p"):
                pass
        assert [s.span_id for s in t.spans] == [0, 1, 2]

    def test_exception_recorded_and_reraised(self):
        t = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with t.span("pipeline.validate"):
                raise RuntimeError("boom")
        finished = t.spans[0]
        assert finished.error == "RuntimeError"
        assert t.phase_totals()["pipeline.validate"]["errors"] == 1

    def test_base_exception_also_recorded(self):
        t = Tracer()
        with pytest.raises(KeyboardInterrupt):
            with t.span("p"):
                raise KeyboardInterrupt()
        assert t.spans[0].error == "KeyboardInterrupt"

    def test_exception_in_nested_span_unwinds_the_stack(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("outer"):
                with t.span("inner"):
                    raise ValueError("inner boom")
        inner, outer = t.spans
        assert inner.error == "ValueError"
        assert outer.error == "ValueError"     # propagated through both
        with t.span("after") as after:
            pass
        assert after.depth == 0                # the stack fully unwound

    def test_annotations_and_sim_time(self):
        t = Tracer()
        with t.span("build.populate_tld", tld="com") as sp:
            sp.annotate(sim_sec=_DAY, nrd=120)
        with t.span("build.populate_tld", tld="net") as sp:
            sp.annotate(sim_sec=2 * _DAY)
        totals = t.phase_totals()["build.populate_tld"]
        assert totals["count"] == 2
        assert totals["sim_sec"] == 3 * _DAY
        record = t.spans[0].as_dict()
        assert record["labels"] == {"tld": "com"}
        assert record["annotations"] == {"nrd": 120}

    def test_labels_coerced_to_strings(self):
        t = Tracer()
        with t.span("build.merge_shards", jobs=4):
            pass
        assert t.spans[0].labels == {"jobs": "4"}

    def test_disabled_tracer_yields_null_span(self):
        t = Tracer(enabled=False)
        with t.span("p") as sp:
            assert sp.annotate(sim_sec=1, extra="x") is sp
        assert t.spans == []
        assert t.phase_totals() == {}

    def test_callable_sink_streams_events(self):
        events = []
        t = Tracer(sink=events.append)
        with t.span("p"):
            pass
        assert len(events) == 1 and events[0]["span"] == "p"

    def test_path_sink_and_to_jsonl(self, tmp_path):
        live = tmp_path / "live.jsonl"
        t = Tracer(sink=str(live))
        with t.span("a"):
            with t.span("b"):
                pass
        t.close_sink()
        streamed = [json.loads(line) for line in live.read_text().splitlines()]
        assert [e["span"] for e in streamed] == ["b", "a"]
        dumped = tmp_path / "dump.jsonl"
        assert t.to_jsonl(dumped) == 2
        assert streamed == [json.loads(line)
                            for line in dumped.read_text().splitlines()]

    def test_wrap_decorator(self):
        t = Tracer()

        @t.wrap("feed.load")
        def load():
            return 42

        assert load() == 42
        assert t.phase_totals()["feed.load"]["count"] == 1

    def test_reset_clears_everything(self):
        t = Tracer()
        with t.span("p"):
            pass
        t.reset()
        assert t.spans == [] and t.phase_totals() == {}
        with t.span("q") as sp:
            pass
        assert sp.span_id == 0                 # ids restart

    def test_provider_protocol(self):
        t = Tracer()
        with t.span("p"):
            pass
        assert t.snapshot() == t.phase_totals()
        assert {m.name for m in t.metrics()} == {
            "span_calls", "span_wall_seconds", "span_errors",
            "span_peak_rss_kb", "span_rss_growth_kb"}
        assert t.spans[0].peak_rss_kb > 0
        assert t.spans[0].wall_sec >= 0.0


# --------------------------------------------------------------------------
# Exposition: escaping, round-trip, lint
# --------------------------------------------------------------------------

#: Label values mixing benign text with the three escaped characters.
_label_values = st.tuples(
    st.text(alphabet=st.characters(blacklist_categories=("Cc", "Cs")),
            max_size=20),
    st.sampled_from(["", '"', "\\", "\n", '\\n"', 'a\\"b', "\n\n\\"]),
).map("".join)


class TestExposition:

    def test_escape_explicit(self):
        assert escape_label_value('a"b\nc\\d') == 'a\\"b\\nc\\\\d'
        assert unescape_label_value('a\\"b\\nc\\\\d') == 'a"b\nc\\d'

    @given(st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_escape_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @given(_label_values)
    @settings(max_examples=100, deadline=None)
    def test_exposition_parse_round_trip(self, value):
        c = Counter("probes", "probes sent", labelnames=("tld",))
        c.labels(value).inc(3)
        registry = MetricsRegistry()
        registry.register("demo", SimpleProvider(c))
        text = to_prometheus(registry)
        assert lint_prometheus(text) == []
        families = parse_prometheus(text)
        ((name, labels, sampled),) = families["repro_demo_probes"]["samples"]
        assert name == "repro_demo_probes"
        assert labels == {"tld": value}
        assert sampled == 3

    def test_histogram_exposition_lints_clean(self):
        h = Histogram("lag", bounds=(1, 10, 60), help="probe lag")
        for value in (0.5, 2, 30, 200):
            h.observe(value)
        registry = MetricsRegistry()
        registry.register("scan", SimpleProvider(h))
        text = to_prometheus(registry)
        assert lint_prometheus(text) == []
        samples = parse_prometheus(text)["repro_scan_lag"]["samples"]
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name.endswith("_bucket")]
        assert buckets == [("1", 1), ("10", 2), ("60", 3), ("+Inf", 4)]
        by_name = {name: value for name, labels, value in samples
                   if not name.endswith("_bucket")}
        assert by_name["repro_scan_lag_count"] == 4
        assert by_name["repro_scan_lag_sum"] == pytest.approx(232.5)

    def test_metric_names_sanitized(self):
        c = Counter("weird.name-1")
        registry = MetricsRegistry()
        registry.register("my group", SimpleProvider(c))
        text = to_prometheus(registry)
        assert "repro_my_group_weird_name_1 0" in text
        assert lint_prometheus(text) == []

    def test_lint_catches_format_violations(self):
        assert lint_prometheus("what is this\n")          # unparseable
        assert lint_prometheus("orphan 1\n") == [
            "sample orphan before its # TYPE line",
            "orphan: no # TYPE line"]
        assert lint_prometheus(
            "# TYPE m wat\nm 1\n") == ["m: unknown type 'wat'"]
        assert lint_prometheus(
            "# TYPE m counter\nm 1\nm 1\n") == ["m: duplicate sample {}"]
        broken_hist = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'     # not monotone
            "h_sum 9\n"
            "h_count 3\n")
        assert lint_prometheus(broken_hist) == ["h: bucket counts not monotone"]
        no_sum = ("# TYPE h histogram\n"
                  'h_bucket{le="+Inf"} 3\n'
                  "h_count 3\n")
        assert lint_prometheus(no_sum) == ["h: missing h_sum"]

    def test_global_registry_exposition_lints_clean(self):
        with tracer().span("test.lint"):
            pass
        text = to_prometheus()
        assert lint_prometheus(text) == []
        snap = json.loads(to_json())
        assert "spans" in snap


# --------------------------------------------------------------------------
# Standing observers
# --------------------------------------------------------------------------

class TestRollingBaseline:

    def test_window_eviction(self):
        baseline = RollingBaseline(window=30)
        for value in range(1, 41):
            baseline.push(value)
        assert len(baseline) == 30
        assert baseline.mean == pytest.approx(sum(range(11, 41)) / 30)

    def test_constant_series_has_zero_std(self):
        baseline = RollingBaseline(window=5)
        for _ in range(10):
            baseline.push(7.0)
        assert baseline.std == 0.0

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            RollingBaseline(window=1)


class TestSeriesObserver:

    def test_min_points_guard(self):
        obs = SeriesObserver("s", min_points=7)
        for day in range(6):
            assert obs.observe(day * _DAY, 100) == []
        # The 7th point would be anomalous, but the baseline is still
        # too thin to trust.
        assert obs.observe(6 * _DAY, 100000) == []

    def test_burst_fires_both_detectors(self):
        obs = SeriesObserver("s", min_points=7)
        for day in range(10):
            obs.observe(day * _DAY, 100)
        found = obs.observe(10 * _DAY, 900)
        assert [a.kind for a in found] == ["zscore", "step"]
        assert all(a.value == 900 for a in found)

    def test_drop_fires_negative_zscore(self):
        obs = SeriesObserver("s", min_points=7)
        for day in range(10):
            obs.observe(day * _DAY, 100)
        found = obs.observe(10 * _DAY, 0)
        kinds = {a.kind: a for a in found}
        assert kinds["zscore"].score < 0
        # -100% stays under the 200% step threshold.
        assert "step" not in kinds

    def test_weekly_rhythm_stays_quiet(self):
        # A weekday plateau with weekend dips — normal NRD weather.
        week = [100, 102, 98, 101, 99, 60, 55]
        obs = SeriesObserver("s", min_points=7)
        found = []
        for day in range(8 * 7):
            found.extend(obs.observe(day * _DAY, week[day % 7]))
        assert found == []

    def test_step_min_delta_gates_sparse_series(self):
        points = [0, 0, 1, 0, 0, 1, 0, 0, 1]
        loose = SeriesObserver("s", min_points=7)
        fired = []
        for day, value in enumerate(points):
            fired.extend(loose.observe(day * _DAY, value))
        assert any(a.kind == "step" for a in fired)       # 300% of 0.25
        gated = SeriesObserver("s", min_points=7, step_min_delta=10.0)
        fired = []
        for day, value in enumerate(points):
            fired.extend(gated.observe(day * _DAY, value))
        assert fired == []

    def test_out_of_order_points_rejected(self):
        obs = SeriesObserver("s")
        obs.observe(2 * _DAY, 1)
        obs.observe(2 * _DAY, 1)               # equal ts is fine
        with pytest.raises(ValueError):
            obs.observe(_DAY, 1)

    def test_shift_absorbed_as_new_normal(self):
        obs = SeriesObserver("s", window=10, min_points=5)
        for day in range(10):
            obs.observe(day * _DAY, 100)
        day = 10
        assert obs.observe(day * _DAY, 1000)   # leading edge fires
        quiet_again = []
        for offset in range(1, 15):
            quiet_again = obs.observe((day + offset) * _DAY, 1000)
        assert quiet_again == []               # the shift is the new normal


class TestObserverSuite:

    def _quiet_then_burst(self, suite, series, burst_ts):
        for day in range(10):
            suite.ingest(series, day * _DAY, 100)
        return suite.ingest(series, burst_ts, 900)

    def test_mass_event_fires_once_per_instant(self):
        suite = ObserverSuite(min_points=7, mass_event_k=2)
        burst_ts = 10 * _DAY
        assert self._quiet_then_burst(suite, "a", burst_ts)
        assert suite.mass_events == []         # one series is not mass
        assert self._quiet_then_burst(suite, "b", burst_ts)
        assert len(suite.mass_events) == 1
        assert suite.mass_events[0].series == ("a", "b")
        assert self._quiet_then_burst(suite, "c", burst_ts)
        assert len(suite.mass_events) == 1     # the k-th join already fired
        assert int(suite.mass_event_counter.value) == 1

    def test_anomaly_counter_labelled_by_series_and_kind(self):
        suite = ObserverSuite(min_points=7)
        self._quiet_then_burst(suite, "a", 10 * _DAY)
        labelled = {child._labelvalues: child.value
                    for child in suite.anomaly_counter.children()}
        assert labelled == {("a", "zscore"): 1, ("a", "step"): 1}

    def test_add_series_overrides_and_duplicates(self):
        suite = ObserverSuite(sigma_mult=4.0)
        custom = suite.add_series("sparse", std_floor=5.0)
        assert suite.observer("sparse") is custom
        assert custom.std_floor == 5.0
        assert suite.observer("auto").sigma_mult == 4.0
        with pytest.raises(ValueError):
            suite.add_series("sparse")

    def test_provider_protocol(self):
        suite = ObserverSuite(min_points=7)
        self._quiet_then_burst(suite, "a", 10 * _DAY)
        snap = suite.snapshot()
        assert snap["anomalies"] == 2 and snap["mass_events"] == 0
        assert snap["series"]["a"]["points"] == 11
        assert len(snap["recent"]) == 2
        assert {m.name for m in suite.metrics()} == {"anomalies", "mass_events"}
        registry = MetricsRegistry()
        registry.register("observers", suite)
        assert lint_prometheus(to_prometheus(registry)) == []


class TestDailyCounts:

    def test_empty(self):
        assert daily_counts([]) == []

    def test_zero_fill_between_first_and_last_day(self):
        stamps = [10, 20, 3 * _DAY + 5]
        assert daily_counts(stamps) == [
            (0, 2), (_DAY, 0), (2 * _DAY, 0), (3 * _DAY, 1)]


# --------------------------------------------------------------------------
# The pipeline hook: quiet default world, loud perturbed world
# --------------------------------------------------------------------------

class TestPipelineObservers:

    def test_default_world_stays_quiet(self, small_result):
        suite = default_pipeline_suite()
        found = observe_pipeline_result(suite, small_result)
        assert found == []
        assert suite.mass_events == []
        # The suite really watched a quarter's worth of daily points.
        assert suite.observer("registrations").points >= 85

    def test_registration_burst_fires_zscore(self, small_result):
        days = daily_counts(
            c.ct_seen_at for c in small_result.candidates.values())
        burst = [(ts, value * 8 if i == 60 else value)
                 for i, (ts, value) in enumerate(days)]
        suite = default_pipeline_suite()
        found = suite.ingest_series("registrations", burst)
        assert "zscore" in {a.kind for a in found}
        assert all(a.ts == days[60][0] for a in found)

    def test_simultaneous_bursts_raise_a_mass_event(self, small_result):
        days = daily_counts(
            c.ct_seen_at for c in small_result.candidates.values())
        burst_ts = days[60][0]
        burst = [(ts, value * 8 if ts == burst_ts else value)
                 for ts, value in days]
        suite = default_pipeline_suite()
        suite.ingest_series("registrations", burst)
        # A dark-host spike the same day: 60 never-resolved domains
        # against a zero baseline clears the sparse-series std floor.
        dark = [(ts, 60 if ts == burst_ts else 0) for ts, _ in days]
        suite.ingest_series("dark_hosts", dark)
        assert len(suite.mass_events) == 1
        assert suite.mass_events[0].series == ("dark_hosts", "registrations")

    def test_pipeline_hook_annotates_result_stats(self, tiny_world):
        suite = default_pipeline_suite()
        result = DarkDNSPipeline(tiny_world, observers=suite).run()
        assert result.stats["anomalies"] == 0
        assert result.stats["mass_events"] == 0

    def test_without_observers_stats_untouched(self, small_result):
        assert "anomalies" not in small_result.stats
        assert "mass_events" not in small_result.stats


# --------------------------------------------------------------------------
# Detector properties (hypothesis): the invariants the scenario
# expectations lean on
# --------------------------------------------------------------------------

def _zscore_kinds(points, value, **params):
    """Kinds of anomalies the final ``value`` fires after ``points``."""
    obs = SeriesObserver("s", min_points=2, **params)
    for day, point in enumerate(points):
        obs.observe(day * _DAY, point)
    return {a.kind for a in obs.observe(len(points) * _DAY, value)}


class TestDetectorProperties:

    @given(points=st.lists(st.integers(0, 10**6), min_size=3, max_size=40),
           value=st.integers(0, 10**6),
           shift=st.integers(-(10**6), 10**6))
    @settings(max_examples=120, deadline=None)
    def test_zscore_verdict_invariant_under_affine_shift(
            self, points, value, shift):
        # Integer inputs keep the rolling sum-of-squares exact in
        # float64 (well under 2**53), so the property holds exactly
        # rather than up to cancellation error.
        # z = (v - mean) / max(std, floor): translating the whole
        # baseline window (and the scored point) by any constant leaves
        # both the deviation and the spread unchanged, so the z-score
        # verdict must not move.  (The step detector is *meant* to be
        # shift-sensitive — its score is relative to the mean — so only
        # the zscore kind is compared.)
        plain = "zscore" in _zscore_kinds(points, value)
        moved = "zscore" in _zscore_kinds([p + shift for p in points],
                                          value + shift)
        assert plain == moved

    @given(points=st.lists(st.integers(0, 10**4), min_size=3, max_size=30),
           value=st.integers(0, 10**4),
           low=st.floats(0, 1e3), extra=st.floats(0, 1e3))
    @settings(max_examples=120, deadline=None)
    def test_step_min_delta_gate_monotone_in_delta(
            self, points, value, low, extra):
        # A stricter gate can only suppress: any step that fires at
        # delta ``low + extra`` must also fire at the looser ``low``.
        high = low + extra
        fired_high = "step" in _zscore_kinds(points, value,
                                             step_min_delta=high)
        fired_low = "step" in _zscore_kinds(points, value,
                                            step_min_delta=low)
        assert not fired_high or fired_low

    @given(k=st.integers(1, 6), bursting=st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_mass_event_exact_at_k_boundary(self, k, bursting):
        # ``bursting`` series spike at one instant: a mass event exists
        # iff at least k of them did, and fires exactly once.
        suite = ObserverSuite(min_points=2, mass_event_k=k)
        burst_ts = 10 * _DAY
        for i in range(bursting):
            series = f"s{i}"
            for day in range(10):
                suite.ingest(series, day * _DAY, 100)
            assert suite.ingest(series, burst_ts, 10_000)
        assert len(suite.mass_events) == (1 if bursting >= k else 0)
        if bursting >= k:
            assert len(suite.mass_events[0].series) == k


# --------------------------------------------------------------------------
# World-level series + scenario expectations
# --------------------------------------------------------------------------

class TestWorldObservers:

    def test_observe_world_counts_ns_changes(self, tiny_world):
        suite = default_pipeline_suite()
        observe_world(suite, tiny_world)
        observer = suite.observer("ns_changes")
        assert observer.points > 0
        # The calibrated 2.5% NS-change rate is weather, not an event.
        assert [a for a in suite.anomalies
                if a.series == "ns_changes"] == []

    def test_ns_changes_excludes_the_initial_ns_set(self, tiny_world):
        # The first ns_timeline entry is the NS set recorded at zone
        # provisioning, not a change — the series total must equal the
        # beyond-the-first count exactly.
        total = sum(
            max(0, sum(1 for _ in lc.ns_timeline.changes()) - 1)
            for registry in tiny_world.registries
            for lc in registry.lifecycles())
        stamps = [ts
                  for registry in tiny_world.registries
                  for lc in registry.lifecycles()
                  for i, (ts, _) in enumerate(lc.ns_timeline.changes())
                  if i > 0]
        assert len(stamps) == total > 0
        assert sum(v for _, v in daily_counts(stamps)) == total


class TestScenarioExpectations:

    def test_rows_are_well_formed(self):
        for name, row in SCENARIO_EXPECTATIONS.items():
            assert row.scenario == name
            for series, kind in row.must_fire:
                assert kind in ("zscore", "step")
                assert series not in row.must_quiet

    def test_quiet_suite_fails_must_fire(self):
        problems = check_expectations(default_pipeline_suite(),
                                      "registrar-burst")
        assert any("expected a zscore anomaly" in p for p in problems)

    def test_noisy_suite_fails_must_quiet(self):
        suite = default_pipeline_suite()
        for day in range(10):
            suite.ingest("dark_hosts", day * _DAY, 0)
        suite.ingest("dark_hosts", 10 * _DAY, 500)
        problems = check_expectations(suite, "baseline")
        assert any("stay quiet" in p for p in problems)
        assert any("dark_hosts" in p for p in problems)

    def test_missing_mass_event_reported(self):
        problems = check_expectations(default_pipeline_suite(),
                                      "dynamic-update-hijack")
        assert any("mass event" in p for p in problems)


# --------------------------------------------------------------------------
# Resolver fleet stats: reset without double-counting + pull gauges
# --------------------------------------------------------------------------

class TestResolverStatsReset:

    @staticmethod
    def _bump(resolver, queries):
        resolver.stats.queries += queries
        resolver.stats.cache_hits += queries // 2

    def test_reset_retires_the_window(self):
        pool = ResolverPool(size=2)
        self._bump(pool.resolvers[0], 10)
        self._bump(pool.resolvers[1], 4)
        closed = pool.reset_stats()
        assert closed.queries == 14
        assert pool.aggregate_stats(include_retired=False).queries == 0
        assert pool.aggregate_stats().queries == 14

    def test_totals_survive_repeated_resets(self):
        pool = ResolverPool(size=2)
        for _ in range(3):
            self._bump(pool.resolvers[0], 10)
            pool.reset_stats()
        self._bump(pool.resolvers[1], 5)
        # 3 retired windows + 1 live window, each query counted once.
        assert pool.aggregate_stats().queries == 35
        assert pool.total_queries() == 35

    def test_lifetime_stats_per_resolver(self):
        resolver = ResolverPool(size=1).resolvers[0]
        self._bump(resolver, 6)
        resolver.reset_stats()
        self._bump(resolver, 4)
        assert resolver.stats.queries == 4
        assert resolver.lifetime_stats().queries == 10

    def test_pool_metrics_pull_live_state(self):
        pool = ResolverPool(size=3)
        metrics = ResolverPoolMetrics(pool)
        assert metrics.snapshot()["pool_size"] == 3
        assert metrics.fleet.labels("queries").value == 0
        self._bump(pool.resolvers[0], 8)
        # No push happened: the gauge reads the pool at access time.
        assert metrics.fleet.labels("queries").value == 8
        pool.reset_stats()
        assert metrics.fleet.labels("queries").value == 8
        assert metrics.snapshot()["cache_hits"] == 4
        registry = MetricsRegistry()
        registry.register("scan.resolver", metrics)
        assert lint_prometheus(to_prometheus(registry)) == []


# --------------------------------------------------------------------------
# Adapters and determinism
# --------------------------------------------------------------------------

class TestAdaptersAndDeterminism:

    def test_old_import_paths_reexport_the_primitives(self):
        from repro.scan import metrics as scan_metrics
        from repro.serve import metrics as serve_metrics
        assert serve_metrics.Counter is Counter
        assert serve_metrics.Histogram is Histogram
        assert scan_metrics.Counter is Counter
        assert scan_metrics.Histogram is Histogram

    def test_adapters_satisfy_the_provider_protocol(self):
        from repro.scan.metrics import ScanMetrics
        from repro.serve.metrics import ServeMetrics
        for provider in (ScanMetrics(), ServeMetrics()):
            registry = MetricsRegistry()
            registry.register("x", provider)
            assert isinstance(provider.snapshot(), dict)
            assert lint_prometheus(to_prometheus(registry)) == []

    def test_fingerprint_identical_with_tracing_disabled(self, tiny_world):
        """Instrumentation must never perturb a sampled value."""
        from repro.obs import set_enabled
        config = ScenarioConfig(seed=11, scale=1 / 5000,
                                tlds=["com", "xyz"], include_cctld=False)
        set_enabled(False)
        try:
            dark_build = build_world(config)
        finally:
            set_enabled(True)
        assert world_fingerprint(dark_build) == world_fingerprint(tiny_world)


# --------------------------------------------------------------------------
# Cross-process span stitching (adopt_spans / from_dict / rss growth)
# --------------------------------------------------------------------------

class TestSpanStitching:

    @staticmethod
    def _worker_records():
        """Records the way a worker produces them: reset tracer, one
        populate span with a nested child."""
        w = Tracer()
        with w.span("build.populate_tld", tld="com") as sp:
            with w.span("inner"):
                pass
            sp.annotate(nrd=120)
        return w.export_records()

    def test_from_dict_round_trips_as_dict(self):
        t = Tracer()
        with t.span("build.populate_tld", tld="com") as sp:
            sp.annotate(sim_sec=_DAY, nrd=9)
        record = t.spans[0].as_dict()
        from repro.obs.spans import Span
        assert Span.from_dict(record).as_dict() == record

    def test_adopt_remaps_ids_and_reroots_under_parent(self):
        records = self._worker_records()
        t = Tracer()
        with t.span("build.merge_shards", jobs=2) as merge:
            assert t.adopt_spans(records, parent=merge, worker=1) == 2
        # Finish order: inner, populate, merge.
        inner, populate, merge_done = t.spans
        assert inner.name == "inner" and populate.name == "build.populate_tld"
        # Foreign ids were remapped onto the local sequence (the merge
        # span took local id 0; adopted spans follow).
        assert {inner.span_id, populate.span_id} == {1, 2}
        assert inner.parent_id == populate.span_id   # intra-batch link kept
        assert populate.parent_id == merge_done.span_id  # root re-rooted
        assert populate.depth == 1 and inner.depth == 2  # shifted under it
        assert populate.labels == {"tld": "com", "worker": "1"}
        assert populate.annotations == {"nrd": 120}

    def test_adopted_spans_feed_aggregates_and_sink(self):
        records = self._worker_records()
        events = []
        t = Tracer(sink=events.append)
        t.adopt_spans(records, worker=0)
        totals = t.phase_totals()
        assert totals["build.populate_tld"]["count"] == 1
        assert totals["inner"]["count"] == 1
        assert [e["span"] for e in events] == ["inner", "build.populate_tld"]

    def test_adopt_without_parent_keeps_roots(self):
        records = self._worker_records()
        t = Tracer()
        t.adopt_spans(records)
        populate = next(s for s in t.spans
                        if s.name == "build.populate_tld")
        assert populate.parent_id is None and populate.depth == 0

    def test_adopt_is_noop_when_disabled(self):
        records = self._worker_records()
        t = Tracer(enabled=False)
        assert t.adopt_spans(records, worker=3) == 0
        assert t.spans == [] and t.phase_totals() == {}

    def test_current_and_root_span(self):
        t = Tracer()
        assert t.current_span() is None and t.root_span() is None
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert t.current_span() is inner
                assert t.root_span() is outer
        assert t.current_span() is None

    def test_rss_growth_zero_when_under_earlier_peak(self, monkeypatch):
        from repro.obs import spans as spans_mod
        rss = iter([1000, 1500, 1500, 1500])  # enter/exit, enter/exit
        monkeypatch.setattr(spans_mod, "_peak_rss_kb", lambda: next(rss))
        t = Tracer()
        with t.span("grew"):
            pass
        with t.span("flat"):
            pass
        grew, flat = t.spans
        assert grew.rss_growth_kb == 500 and grew.peak_rss_kb == 1500
        assert flat.rss_growth_kb == 0 and flat.peak_rss_kb == 1500
        totals = t.phase_totals()
        assert totals["grew"]["rss_growth_kb"] == 500
        assert totals["flat"]["rss_growth_kb"] == 0

    def test_detach_sink_drops_without_closing(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        t = Tracer(sink=str(path))
        handle = t._sink_file
        t.detach_sink()
        assert t._sink is None and t._sink_file is None
        assert not handle.closed   # the parent still owns the handle
        handle.close()


# --------------------------------------------------------------------------
# Sampling profiler
# --------------------------------------------------------------------------

class TestSamplingProfiler:

    def _spin(self, trace, seconds=0.05):
        import time as _time
        with trace.span("hot.phase"):
            deadline = _time.perf_counter() + seconds
            while _time.perf_counter() < deadline:
                sum(range(200))

    def test_samples_attribute_to_active_phase(self):
        from repro.obs.profiler import SamplingProfiler
        t = Tracer()
        prof = SamplingProfiler(interval=0.001, trace=t).start()
        try:
            self._spin(t)
        finally:
            prof.stop()
        assert prof.samples > 0
        assert prof.phase_samples().get("hot.phase", 0) > 0
        assert any(line.startswith("hot.phase;") for line in prof.collapsed())

    def test_zero_samples_is_clean(self):
        from repro.obs.profiler import SamplingProfiler
        prof = SamplingProfiler(interval=60.0).start()
        prof.stop()
        assert prof.samples == 0
        assert prof.collapsed() == []
        assert prof.top_frames() == {}
        assert prof.phase_samples() == {}

    def test_double_start_and_double_stop_are_noops(self):
        from repro.obs.profiler import SamplingProfiler, active
        prof = SamplingProfiler(interval=0.01)
        assert prof.start() is prof
        thread = prof._thread
        assert prof.start() is prof and prof._thread is thread
        assert active() is prof
        prof.stop()
        assert active() is None
        prof.stop()                      # second stop: no-op, no raise
        assert not prof.running

    def test_exception_during_profiled_phase(self, tmp_path):
        from repro.obs.profiler import profiling
        t = tracer()
        out = tmp_path / "prof.txt"
        with pytest.raises(ValueError):
            with profiling(path=str(out), interval=0.001) as prof:
                self._spin(t, seconds=0.03)
                raise ValueError("boom")
        assert not prof.running          # stopped despite the raise
        assert out.exists()              # collapsed stacks still written
        if prof.samples:
            assert out.read_text().strip()

    def test_invalid_interval_rejected(self):
        from repro.obs.profiler import SamplingProfiler
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_merge_counts_and_collapsed_format(self):
        from repro.obs.profiler import SamplingProfiler
        prof = SamplingProfiler(interval=60.0)
        prof.merge_counts([("phase;mod.f;mod.g", 3), ("phase;mod.f", 2)])
        prof.merge_counts([("phase;mod.f;mod.g", 1)])
        assert prof.samples == 6
        assert prof.collapsed() == ["phase;mod.f;mod.g 4", "phase;mod.f 2"]
        assert prof.export_counts() == [("phase;mod.f", 2),
                                        ("phase;mod.f;mod.g", 4)]
        assert prof.top_frames() == {
            "phase": [("mod.g", 4), ("mod.f", 2)]}
        assert prof.phase_samples() == {"phase": 6}

    def test_write_collapsed(self, tmp_path):
        from repro.obs.profiler import SamplingProfiler
        prof = SamplingProfiler(interval=60.0)
        prof.merge_counts([("p;a.b", 5)])
        path = tmp_path / "collapsed.txt"
        assert prof.write_collapsed(path) == 1
        assert path.read_text() == "p;a.b 5\n"

    def test_unattributed_outside_spans(self):
        from repro.obs.profiler import SamplingProfiler, UNATTRIBUTED
        import time as _time
        t = Tracer()
        prof = SamplingProfiler(interval=0.001, trace=t).start()
        try:
            deadline = _time.perf_counter() + 0.03
            while _time.perf_counter() < deadline:
                sum(range(200))
        finally:
            prof.stop()
        if prof.samples:
            assert set(prof.phase_samples()) == {UNATTRIBUTED}


# --------------------------------------------------------------------------
# Structured logging
# --------------------------------------------------------------------------

class TestLogRouter:

    @staticmethod
    def _router(**kw):
        import io
        from repro.obs.log import LogRouter
        stream = io.StringIO()
        clock = {"now": 1000.0}
        router = LogRouter(stream=stream,
                           clock=lambda: clock["now"], **kw)
        return router, stream, clock

    def test_levels_filter(self):
        router, stream, _ = self._router(level="warning")
        assert not router.emit("x", "info", "hidden")
        assert router.emit("x", "warning", "shown")
        assert stream.getvalue() == "warning: shown\n"

    def test_unknown_level_rejected(self):
        from repro.obs.log import LogRouter
        with pytest.raises(ValueError):
            LogRouter(level="loud")
        router, _, _ = self._router()
        with pytest.raises(ValueError):
            router.set_level("nope")

    def test_duplicate_suppression_and_repeats(self):
        router, stream, clock = self._router()
        assert router.emit("feed", "warning", "bad line")
        for _ in range(4):                      # inside the window
            clock["now"] += 1.0
            assert not router.emit("feed", "warning", "bad line")
        clock["now"] += 10.0                    # past the window
        assert router.emit("feed", "warning", "bad line")
        lines = stream.getvalue().splitlines()
        assert lines == ["warning: bad line",
                         "warning: bad line [x4 suppressed]"]
        assert router.suppressed == 4 and router.emitted == 2

    def test_distinct_messages_not_suppressed(self):
        router, stream, _ = self._router()
        assert router.emit("x", "info", "one")
        assert router.emit("x", "info", "two")
        assert stream.getvalue() == "one\ntwo\n"

    def test_error_level_bypasses_suppression(self):
        router, stream, _ = self._router()
        assert router.emit("cli", "error", "boom")
        assert router.emit("cli", "error", "boom")  # same instant
        assert stream.getvalue() == "error: boom\nerror: boom\n"

    def test_json_sink_schema(self, tmp_path):
        router, _, _ = self._router()
        path = tmp_path / "log.jsonl"
        router.open_json(path)
        router.emit("cli", "info", "hello", extra=7)
        router.close_json()
        (record,) = [json.loads(line)
                     for line in path.read_text().splitlines()]
        assert record["msg"] == "hello" and record["logger"] == "cli"
        assert record["level"] == "info" and record["extra"] == 7
        assert record["ts"] == 1000.0
        # Correlation keys are always present (null outside spans).
        assert record["span"] is None and record["trace"] is None

    def test_span_and_trace_correlation_ids(self, tmp_path):
        router, _, _ = self._router()
        path = tmp_path / "log.jsonl"
        router.open_json(path)
        t = tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                router.emit("core", "info", "within")
        router.close_json()
        (record,) = [json.loads(line)
                     for line in path.read_text().splitlines()]
        assert record["span"] == inner.span_id
        assert record["trace"] == outer.span_id

    def test_repeats_recorded_in_json(self, tmp_path):
        router, _, clock = self._router()
        path = tmp_path / "log.jsonl"
        router.open_json(path)
        router.emit("x", "warning", "dup")
        router.emit("x", "warning", "dup")
        clock["now"] += 99.0
        router.emit("x", "warning", "dup")
        router.close_json()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert "repeats" not in records[0]
        assert records[1]["repeats"] == 1

    def test_logger_facade_and_configure(self, tmp_path, capsys):
        from repro.obs.log import configure, get_logger, router as router_fn
        path = tmp_path / "log.jsonl"
        shared = router_fn()
        prev_level = shared.level
        try:
            configure(json_path=path, level="debug")
            log = get_logger("t.facade")
            assert log.debug("dbg", k=1)
            assert log.info("inf")
        finally:
            configure(level=prev_level)
            shared.close_json()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["level"] for r in records] == ["debug", "info"]
        assert all(r["logger"] == "t.facade" for r in records)
        err = capsys.readouterr().err
        assert "debug: dbg" in err and "inf" in err

    def test_feed_loader_routes_through_log(self, tmp_path, capsys):
        from repro.core.feed import PublicFeed
        path = tmp_path / "feed.jsonl"
        path.write_text('not json\n{"domain": "a.com", "tld": "com", '
                        '"seen_at": 5}\n', encoding="utf-8")
        feed = PublicFeed.from_jsonl(path)
        assert feed.load_errors == 1
        err = capsys.readouterr().err
        assert "warning" in err and "1 malformed" in err


# --------------------------------------------------------------------------
# Live progress: pull gauges + heartbeat
# --------------------------------------------------------------------------

class TestBuildProgress:

    def test_current_rss_is_positive(self):
        from repro.obs.progress import current_rss_kb
        assert current_rss_kb() > 0

    def test_source_set_read_clear(self):
        from repro.obs.progress import BuildProgress
        progress = BuildProgress()
        assert progress.snapshot()["registrations"] == 0
        live = {"n": 0}
        progress.set_registrations_source(lambda: live["n"])
        live["n"] = 42
        assert progress.snapshot()["registrations"] == 42
        progress.clear()
        assert progress.snapshot()["registrations"] == 0

    def test_dying_source_reads_zero(self):
        from repro.obs.progress import BuildProgress
        progress = BuildProgress()
        progress.set_registrations_source(
            lambda: (_ for _ in ()).throw(RuntimeError("gone")))
        assert progress.snapshot()["registrations"] == 0

    def test_registered_as_progress_group(self):
        from repro.obs.progress import build_progress
        assert get_registry().group("progress") is build_progress()
        snap = build_progress().snapshot()
        assert snap["rss_kb"] > 0

    def test_gauge_cleared_after_build(self, tiny_world):
        # Any built world must leave the gauge unsourced.
        from repro.obs.progress import build_progress
        assert build_progress()._source is None


class TestHeartbeat:

    @staticmethod
    def _beat(**kw):
        import io
        from repro.obs.progress import Heartbeat
        stream = io.StringIO()
        clock = {"now": 0.0}
        beat = Heartbeat(stream=stream, clock=lambda: clock["now"], **kw)
        return beat, stream, clock

    def test_wanted_requires_tty_and_not_quiet(self):
        import io
        from repro.obs.progress import Heartbeat

        class Tty(io.StringIO):
            def isatty(self):
                return True

        assert Heartbeat.wanted(stream=Tty())
        assert not Heartbeat.wanted(stream=Tty(), quiet=True)
        assert not Heartbeat.wanted(stream=io.StringIO())

    def test_render_line_idle(self):
        beat, _, clock = self._beat()
        clock["now"] = 65.0
        line = beat.render_line()
        assert line.startswith("[1:05] idle")
        assert "rss=" in line

    def test_render_line_active_phase_and_registrations(self):
        from repro.obs.progress import build_progress
        beat, _, _ = self._beat()
        progress = build_progress()
        progress.set_registrations_source(lambda: 34_016)
        try:
            with tracer().span("build.populate_tld", tld="com"):
                line = beat.render_line()
        finally:
            progress.clear()
        assert "build.populate_tld{tld=com}" in line
        assert "regs=34,016" in line

    def test_thread_writes_lines(self):
        beat, stream, _ = self._beat(interval=0.01)
        import time as _time
        beat.start()
        try:
            deadline = _time.monotonic() + 2.0
            while beat.lines == 0 and _time.monotonic() < deadline:
                _time.sleep(0.01)
        finally:
            beat.stop()
        assert beat.lines > 0
        assert stream.getvalue().count("\n") == beat.lines

    def test_start_stop_idempotent(self):
        beat, _, _ = self._beat(interval=60.0)
        beat.start()
        thread = beat._thread
        assert beat.start() is beat and beat._thread is thread
        beat.stop()
        assert beat.stop() is beat and not beat.running

    def test_invalid_interval_rejected(self):
        from repro.obs.progress import Heartbeat
        with pytest.raises(ValueError):
            Heartbeat(interval=0)
