"""Tests for RFC 1035 wire encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore.message import Query, RCode, noerror, nxdomain
from repro.dnscore.records import RRType, ResourceRecord, soa_for_tld
from repro.dnscore.wire import (
    WireError,
    decode_message,
    decode_name,
    encode_name,
    encode_query,
    encode_response,
)


class TestNames:
    def test_roundtrip_simple(self):
        buffer = bytearray()
        encode_name("www.example.com", buffer)
        name, offset = decode_name(bytes(buffer), 0)
        assert name == "www.example.com"
        assert offset == len(buffer)

    def test_root(self):
        buffer = bytearray()
        encode_name("", buffer)
        assert bytes(buffer) == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_compression_reuses_suffix(self):
        buffer = bytearray()
        offsets = {}
        encode_name("a.example.com", buffer, offsets)
        first_len = len(buffer)
        encode_name("b.example.com", buffer, offsets)
        # Second name: one label + a 2-byte pointer, far shorter.
        assert len(buffer) - first_len == 2 + len("b") + 2 - 1
        name_a, next_off = decode_name(bytes(buffer), 0)
        name_b, _ = decode_name(bytes(buffer), next_off)
        assert (name_a, name_b) == ("a.example.com", "b.example.com")

    def test_pointer_loop_rejected(self):
        # A pointer pointing at itself.
        data = b"\xc0\x00"
        with pytest.raises(WireError):
            decode_name(data, 0)

    def test_truncated_label(self):
        with pytest.raises(WireError):
            decode_name(b"\x05ab", 0)

    def test_reserved_label_type(self):
        with pytest.raises(WireError):
            decode_name(b"\x80abc", 0)

    @given(st.lists(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                            min_size=1, max_size=15),
                    min_size=1, max_size=4))
    @settings(max_examples=80)
    def test_roundtrip_property(self, labels):
        name = ".".join(labels)
        buffer = bytearray()
        encode_name(name, buffer)
        decoded, _ = decode_name(bytes(buffer), 0)
        assert decoded == name


class TestQueries:
    def test_roundtrip(self):
        wire = encode_query(Query("example.com", RRType.NS), msg_id=99)
        message = decode_message(wire)
        assert message.msg_id == 99
        assert not message.is_response
        assert message.recursion_desired
        assert message.questions == (("example.com", RRType.NS),)

    def test_short_message_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"\x00\x01")


class TestResponses:
    def _roundtrip(self, response):
        return decode_message(encode_response(response, msg_id=7))

    def test_a_answer(self):
        query = Query("example.com", RRType.A)
        record = ResourceRecord("example.com", RRType.A, "192.0.2.55", 300)
        message = self._roundtrip(noerror(query, (record,)))
        assert message.is_response and message.authoritative
        assert message.rcode == 0
        assert message.answers == (record,)

    def test_aaaa_answer(self):
        query = Query("example.com", RRType.AAAA)
        record = ResourceRecord("example.com", RRType.AAAA,
                                "2001:db8:0:0:0:0:0:1", 300)
        message = self._roundtrip(noerror(query, (record,)))
        assert message.answers[0].rdata == "2001:db8:0:0:0:0:0:1"

    def test_ns_answers_with_compression(self):
        query = Query("example.com", RRType.NS)
        records = tuple(
            ResourceRecord("example.com", RRType.NS, f"ns{i}.example.com")
            for i in (1, 2))
        wire = encode_response(noerror(query, records))
        message = decode_message(wire)
        assert {r.rdata for r in message.answers} == {
            "ns1.example.com", "ns2.example.com"}
        # Compression must beat naive encoding.
        naive_size = sum(len(r.owner) + len(r.rdata) + 14 for r in records)
        assert len(wire) < naive_size + 40

    def test_soa_answer(self):
        soa = soa_for_tld("com", serial=123456)
        query = Query("com", RRType.SOA)
        message = self._roundtrip(noerror(query, (soa.to_record("com"),)))
        assert "123456" in message.answers[0].rdata

    def test_txt_answer(self):
        query = Query("example.com", RRType.TXT)
        record = ResourceRecord("example.com", RRType.TXT,
                                "v=spf1 include:_spf.example.com -all")
        message = self._roundtrip(noerror(query, (record,)))
        assert message.answers[0].rdata == record.rdata

    def test_long_txt_chunking(self):
        query = Query("example.com", RRType.TXT)
        record = ResourceRecord("example.com", RRType.TXT, "x" * 600)
        message = self._roundtrip(noerror(query, (record,)))
        assert message.answers[0].rdata == "x" * 600

    def test_mx_answer(self):
        query = Query("example.com", RRType.MX)
        record = ResourceRecord("example.com", RRType.MX, "mail.example.com")
        message = self._roundtrip(noerror(query, (record,)))
        assert message.answers[0].rdata.endswith("mail.example.com")

    def test_nxdomain(self):
        message = self._roundtrip(nxdomain(Query("gone.com", RRType.A)))
        assert message.rcode == RCode.NXDOMAIN.value
        assert message.answers == ()

    def test_decode_rejects_bad_rdlength(self):
        query = Query("example.com", RRType.A)
        record = ResourceRecord("example.com", RRType.A, "192.0.2.1")
        wire = bytearray(encode_response(noerror(query, (record,))))
        # Corrupt the A rdlength (last 6 bytes are rdlength+rdata).
        wire[-6:-4] = (9).to_bytes(2, "big")
        with pytest.raises(WireError):
            decode_message(bytes(wire))


class TestAgainstSimulatedAuthority:
    def test_wire_roundtrip_of_authority_answers(self, tiny_world):
        """Answers produced by the simulated TLD authority survive a
        trip through the wire codec byte-for-byte."""
        registry = next(iter(tiny_world.registries))
        authority = registry.authority()
        count = 0
        for lifecycle in registry.lifecycles():
            if lifecycle.zone_added_at is None:
                continue
            query = Query(lifecycle.domain, RRType.NS)
            response = authority.lookup(query, lifecycle.zone_added_at)
            message = decode_message(encode_response(response))
            assert set(message.answers) == set(response.records)
            count += 1
            if count >= 25:
                break
        assert count == 25
