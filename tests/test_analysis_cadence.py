"""Tests for SOA-probe cadence inference (§4.1 validation)."""

import pytest

from repro.analysis.cadence import (
    CadenceEstimate,
    cadence_report,
    estimate_interval,
    probe_registry,
    serial_change_times,
)
from repro.errors import ConfigError
from repro.registry.policy import gtld
from repro.registry.registry import Registry
from repro.simtime.clock import DAY, HOUR, MINUTE, Window
from repro.simtime.rng import RngStream


def busy_registry(interval, seed=5, registrations=400,
                  span=2 * DAY) -> Registry:
    """A registry with enough churn that most ticks change something."""
    registry = Registry(gtld("com", interval, snapshot_offset=0))
    rng = RngStream(seed, "cadence")
    for i in range(registrations):
        registry.register(f"d{i}.com", rng.randrange(span), "GoDaddy",
                          ns_hosts=["ns1.h.net"])
    return registry


class TestSerialChangeTimes:
    def test_changes_detected_on_grid(self):
        registry = busy_registry(MINUTE)
        window = Window(0, 6 * HOUR)
        changes = serial_change_times(registry.serial_at, window, 30)
        assert changes
        assert all(window.start < ts < window.end for ts in changes)

    def test_no_changes_in_quiet_zone(self):
        registry = Registry(gtld("com", MINUTE, snapshot_offset=0))
        changes = serial_change_times(registry.serial_at, Window(0, HOUR), 60)
        assert changes == []

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            serial_change_times(lambda ts: 0, Window(0, 10), 0)


class TestEstimateInterval:
    def test_exact_grid(self):
        changes = [600, 1200, 1800, 3000, 3600]
        assert estimate_interval(changes, 60) == 600

    def test_needs_three_changes(self):
        assert estimate_interval([100, 200], 60) is None

    def test_floor_at_probe_grid(self):
        changes = [60, 120, 180, 240]
        assert estimate_interval(changes, 60) == 60


class TestProbeRegistry:
    def test_recovers_verisign_cadence(self):
        """Probing every 30 s recovers the 60 s .com cadence."""
        registry = busy_registry(MINUTE)
        estimate = probe_registry(registry, Window(0, 12 * HOUR),
                                  probe_interval=30)
        assert estimate.estimated_interval is not None
        assert estimate.consistent

    def test_recovers_slow_gtld_cadence(self):
        interval = 20 * MINUTE
        registry = busy_registry(interval, registrations=800)
        estimate = probe_registry(registry, Window(0, 2 * DAY),
                                  probe_interval=MINUTE)
        assert estimate.estimated_interval is not None
        assert abs(estimate.estimated_interval - interval) <= MINUTE

    def test_quiet_zone_yields_none(self):
        registry = Registry(gtld("com", MINUTE, snapshot_offset=0))
        estimate = probe_registry(registry, Window(0, HOUR))
        assert estimate.estimated_interval is None
        assert not estimate.consistent

    def test_report(self):
        registry = busy_registry(MINUTE)
        estimate = probe_registry(registry, Window(0, 12 * HOUR),
                                  probe_interval=30)
        report = cadence_report([estimate])
        assert report.all_within_tolerance
        assert "SOA" in report.render()

    def test_probing_scenario_world(self, tiny_world):
        """The paper's validation applied to scenario registries: the
        estimated cadence matches each registry's configured policy."""
        window = Window(tiny_world.window.start,
                        tiny_world.window.start + 3 * DAY)
        for registry in tiny_world.registries:
            estimate = probe_registry(registry, window, probe_interval=30)
            if estimate.estimated_interval is not None \
                    and estimate.observed_changes > 20:
                assert estimate.estimated_interval <= \
                    registry.policy.zone_update_interval + 30
