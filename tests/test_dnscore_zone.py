"""Tests for zones, snapshots, diffs, and the DiffSequence NRD logic."""

import pytest

from repro.dnscore.zone import (
    Delegation,
    Zone,
    ZoneVersion,
    domains_added,
    domains_removed,
    nameserver_changes,
)
from repro.dnscore.zonediff import DiffSequence, ZoneDelta, merge_nrd_maps
from repro.errors import ZoneError


@pytest.fixture
def zone():
    z = Zone("com")
    z.add_delegation("alpha.com", ["ns1.h.net", "ns2.h.net"])
    z.commit()
    return z


class TestZone:
    def test_rejects_non_tld_apex(self):
        with pytest.raises(ZoneError):
            Zone("co.uk")

    def test_add_and_contains(self, zone):
        assert "alpha.com" in zone
        assert "ALPHA.COM" in zone
        assert "beta.com" not in zone

    def test_rejects_duplicate(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation("alpha.com", ["ns9.h.net"])

    def test_rejects_foreign_domain(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation("alpha.net", ["ns1.h.net"])

    def test_rejects_subdomain_delegation(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation("deep.alpha.com", ["ns1.h.net"])

    def test_remove(self, zone):
        zone.remove_delegation("alpha.com")
        assert "alpha.com" not in zone

    def test_remove_unknown(self, zone):
        with pytest.raises(ZoneError):
            zone.remove_delegation("ghost.com")

    def test_replace_nameservers(self, zone):
        zone.replace_nameservers("alpha.com", ["ns1.other.net"])
        assert zone.get("alpha.com").nameservers == frozenset({"ns1.other.net"})

    def test_commit_bumps_serial_once_per_batch(self, zone):
        serial = zone.serial
        zone.add_delegation("b.com", ["ns1.h.net"])
        zone.add_delegation("c.com", ["ns1.h.net"])
        assert zone.commit() == serial + 1

    def test_commit_without_changes_keeps_serial(self, zone):
        serial = zone.serial
        assert zone.commit() == serial

    def test_mutation_counter(self, zone):
        assert zone.mutations == 1
        zone.replace_nameservers("alpha.com", ["ns3.h.net"])
        assert zone.mutations == 2

    def test_empty_delegation_rejected(self):
        with pytest.raises(ZoneError):
            Delegation("a.com", frozenset())

    def test_apex_records(self, zone):
        records = zone.apex_records()
        assert records[0].rtype.value == "SOA"
        assert len(records) == 3


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self, zone):
        snap = zone.snapshot(taken_at=1000)
        zone.add_delegation("later.com", ["ns1.h.net"])
        assert "later.com" not in snap
        assert snap.taken_at == 1000

    def test_zonefile_roundtrip(self, zone):
        zone.add_delegation("beta.com", ["ns1.x.org"])
        zone.commit()
        snap = zone.snapshot(5)
        parsed = ZoneVersion.from_zonefile("com", snap.to_zonefile(), taken_at=5)
        assert parsed.domains == snap.domains
        assert parsed.serial == snap.serial
        assert parsed.nameservers_of("beta.com") == frozenset({"ns1.x.org"})

    def test_diff_helpers(self, zone):
        before = zone.snapshot(0)
        zone.add_delegation("new.com", ["ns1.h.net"])
        zone.remove_delegation("alpha.com")
        after = zone.snapshot(1)
        assert domains_added(before, after) == {"new.com"}
        assert domains_removed(before, after) == {"alpha.com"}

    def test_nameserver_changes(self, zone):
        before = zone.snapshot(0)
        zone.replace_nameservers("alpha.com", ["ns1.new.net"])
        after = zone.snapshot(1)
        changes = nameserver_changes(before, after)
        assert set(changes) == {"alpha.com"}
        old, new = changes["alpha.com"]
        assert "ns1.h.net" in old and "ns1.new.net" in new


class TestZoneDelta:
    def test_between(self, zone):
        before = zone.snapshot(0)
        zone.add_delegation("n.com", ["ns1.h.net"])
        zone.commit()
        after = zone.snapshot(10)
        delta = ZoneDelta.between(before, after)
        assert delta.added == frozenset({"n.com"})
        assert delta.removed == frozenset()
        assert delta.churn == 1
        assert not delta.is_empty

    def test_between_rejects_different_zones(self, zone):
        other = Zone("net").snapshot(0)
        with pytest.raises(ZoneError):
            ZoneDelta.between(zone.snapshot(0), other)


class TestDiffSequence:
    def _snapshots(self):
        zone = Zone("com")
        zone.add_delegation("old.com", ["ns1.h.net"])
        s0 = zone.snapshot(0)
        zone.add_delegation("day1.com", ["ns1.h.net"])
        s1 = zone.snapshot(100)
        zone.remove_delegation("day1.com")
        zone.add_delegation("day2.com", ["ns1.h.net"])
        s2 = zone.snapshot(200)
        return s0, s1, s2

    def test_first_feed_returns_none(self):
        s0, *_ = self._snapshots()
        assert DiffSequence("com").feed(s0) is None

    def test_baseline_not_counted_as_nrd(self):
        s0, s1, s2 = self._snapshots()
        seq = DiffSequence("com")
        for snap in (s0, s1, s2):
            seq.feed(snap)
        nrds = seq.newly_registered()
        assert set(nrds) == {"day1.com", "day2.com"}
        assert nrds["day1.com"] == 100

    def test_transient_between_snapshots_invisible(self):
        """A domain added and removed between captures never appears —
        the paper's blind spot in miniature."""
        zone = Zone("com")
        s0 = zone.snapshot(0)
        zone.add_delegation("flash.com", ["ns1.h.net"])
        zone.remove_delegation("flash.com")
        s1 = zone.snapshot(100)
        seq = DiffSequence("com")
        seq.feed(s0)
        seq.feed(s1)
        assert "flash.com" not in seq.ever_seen

    def test_rejects_out_of_order(self):
        s0, s1, _ = self._snapshots()
        seq = DiffSequence("com")
        seq.feed(s1)
        with pytest.raises(ZoneError):
            seq.feed(s0)

    def test_rejects_wrong_zone(self):
        seq = DiffSequence("net")
        with pytest.raises(ZoneError):
            seq.feed(Zone("com").snapshot(0))

    def test_appeared_within(self):
        s0, s1, s2 = self._snapshots()
        seq = DiffSequence("com")
        for snap in (s0, s1, s2):
            seq.feed(snap)
        assert seq.appeared_within("day1.com", 50, 150)
        assert not seq.appeared_within("day2.com", 0, 150)

    def test_merge_nrd_maps(self):
        s0, s1, s2 = self._snapshots()
        seq = DiffSequence("com")
        for snap in (s0, s1, s2):
            seq.feed(snap)
        merged = merge_nrd_maps([seq])
        assert merged == seq.newly_registered()
