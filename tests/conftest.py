"""Shared fixtures: small scenario worlds reused across test modules.

World construction is the expensive part of integration tests, so the
fixtures are session-scoped; tests must not mutate fixture worlds.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.workload.scenario import ScenarioConfig, build_world


@pytest.fixture(scope="session")
def tiny_world():
    """Two-TLD world, ~2k registrations; fast to build."""
    return build_world(ScenarioConfig(
        seed=11, scale=1 / 5000, tlds=["com", "xyz"], include_cctld=False))


@pytest.fixture(scope="session")
def tiny_result(tiny_world):
    return run_pipeline(tiny_world)


@pytest.fixture(scope="session")
def small_world():
    """All TLDs + ccTLD at 1/2000 — the integration-test world."""
    return build_world(ScenarioConfig(
        seed=5, scale=1 / 2000, include_cctld=True, cctld_scale=0.5))


@pytest.fixture(scope="session")
def small_result(small_world):
    return run_pipeline(small_world)
