"""Tests for repro.simtime.clock."""

import pytest

from repro.errors import ClockError, ConfigError
from repro.simtime.clock import (
    DAY,
    HOUR,
    MINUTE,
    PAPER_WINDOW,
    SimClock,
    Window,
    day_floor,
    days,
    hours,
    isoformat,
    minutes,
    month_key,
    parse_duration,
    to_datetime,
    utc,
)


class TestDurations:
    def test_minutes(self):
        assert minutes(10) == 600

    def test_hours(self):
        assert hours(2) == 7200

    def test_days(self):
        assert days(1) == 86400

    def test_fractional_rounding(self):
        assert minutes(1.5) == 90
        assert hours(0.5) == 1800

    @pytest.mark.parametrize("text,expected", [
        ("45m", 45 * MINUTE),
        ("6h", 6 * HOUR),
        ("2 days", 2 * DAY),
        ("30s", 30),
        ("1w", 7 * DAY),
        ("1.5h", int(1.5 * HOUR)),
    ])
    def test_parse_duration(self, text, expected):
        assert parse_duration(text) == expected

    def test_parse_duration_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_duration("soon")

    def test_parse_duration_rejects_unknown_unit(self):
        with pytest.raises(ConfigError):
            parse_duration("5 fortnights")


class TestCalendar:
    def test_utc_epoch(self):
        assert utc(1970, 1, 1) == 0

    def test_paper_window_bounds(self):
        assert utc(2023, 11, 1) == PAPER_WINDOW.start
        assert utc(2024, 2, 1) == PAPER_WINDOW.end

    def test_isoformat_roundtrip(self):
        ts = utc(2023, 11, 15, 12, 30, 45)
        assert isoformat(ts) == "2023-11-15T12:30:45Z"

    def test_day_floor(self):
        ts = utc(2023, 11, 15, 13, 22)
        assert day_floor(ts) == utc(2023, 11, 15)

    def test_month_key(self):
        assert month_key(utc(2023, 12, 31, 23, 59)) == "2023-12"

    def test_to_datetime_is_utc(self):
        dt = to_datetime(utc(2024, 1, 1))
        assert dt.year == 2024 and dt.utcoffset().total_seconds() == 0


class TestWindow:
    def test_contains_is_half_open(self):
        window = Window(100, 200)
        assert 100 in window
        assert 199 in window
        assert 200 not in window
        assert 99 not in window

    def test_duration(self):
        assert Window(0, DAY).duration == DAY

    def test_rejects_inverted(self):
        with pytest.raises(ConfigError):
            Window(10, 5)

    def test_clamp(self):
        window = Window(100, 200)
        assert window.clamp(50) == 100
        assert window.clamp(150) == 150
        assert window.clamp(500) == 199

    def test_days_iterates_day_boundaries(self):
        window = Window(utc(2023, 11, 1), utc(2023, 11, 4))
        assert list(window.days()) == [
            utc(2023, 11, 1), utc(2023, 11, 2), utc(2023, 11, 3)]

    def test_days_skips_partial_first_day(self):
        window = Window(utc(2023, 11, 1, 5), utc(2023, 11, 3))
        assert list(window.days()) == [utc(2023, 11, 2)]

    def test_months_of_paper_window(self):
        assert PAPER_WINDOW.months() == ["2023-11", "2023-12", "2024-01"]

    def test_split_months_covers_window(self):
        parts = PAPER_WINDOW.split_months()
        assert parts[0].start == PAPER_WINDOW.start
        assert parts[-1].end == PAPER_WINDOW.end
        for left, right in zip(parts, parts[1:]):
            assert left.end == right.start

    def test_split_months_crosses_year(self):
        window = Window(utc(2023, 12, 15), utc(2024, 1, 15))
        parts = window.split_months()
        assert len(parts) == 2
        assert parts[0].end == utc(2024, 1, 1)

    def test_overlaps(self):
        assert Window(0, 10).overlaps(Window(5, 15))
        assert not Window(0, 10).overlaps(Window(10, 20))


class TestSimClock:
    def test_starts_at_paper_window(self):
        assert SimClock().now == PAPER_WINDOW.start

    def test_advance(self):
        clock = SimClock(0)
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_to(self):
        clock = SimClock(0)
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_instant_is_noop(self):
        clock = SimClock(50)
        assert clock.advance_to(50) == 50

    def test_rejects_negative_advance(self):
        with pytest.raises(ClockError):
            SimClock(0).advance(-1)

    def test_rejects_time_travel(self):
        clock = SimClock(100)
        with pytest.raises(ClockError):
            clock.advance_to(99)
