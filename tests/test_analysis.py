"""Tests for ECDFs, tables, and the per-experiment analyses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.blocklists import BlocklistAnalysis, FlagTiming
from repro.analysis.detection import DetectionAnalysis
from repro.analysis.ecdf import ECDF, cdf_series, format_duration, render_cdf
from repro.analysis.landscape import InfrastructureAnalysis, VolumeAnalysis
from repro.analysis.lifetimes import LifetimeAnalysis
from repro.analysis.report import full_report, rdap_failure_report, render_reports
from repro.analysis.tables import (
    Comparison,
    ExperimentReport,
    TextTable,
    share_table,
)
from repro.analysis.visibility import CCTLDComparison, NODComparison
from repro.errors import ConfigError
from repro.simtime.clock import DAY, HOUR, MINUTE


class TestECDF:
    def test_prob_at(self):
        ecdf = ECDF([1, 2, 3, 4])
        assert ecdf.prob_at(0) == 0.0
        assert ecdf.prob_at(2) == 0.5
        assert ecdf.prob_at(4) == 1.0

    def test_empty(self):
        ecdf = ECDF([])
        assert ecdf.is_empty
        assert ecdf.prob_at(5) == 0.0
        with pytest.raises(ConfigError):
            ecdf.quantile(0.5)

    def test_median(self):
        assert ECDF([1, 2, 3]).median == 2
        assert ECDF([5]).median == 5

    def test_quantile_bounds(self):
        ecdf = ECDF([1, 2, 3])
        with pytest.raises(ConfigError):
            ecdf.quantile(1.5)
        assert ecdf.quantile(0.0) == 1
        assert ecdf.quantile(1.0) == 3

    def test_on_grid(self):
        curve = ECDF([10, 20, 30]).on_grid([15, 25, 35])
        assert curve == [(15, pytest.approx(1 / 3)),
                         (25, pytest.approx(2 / 3)), (35, 1.0)]

    @given(st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=100))
    @settings(max_examples=60)
    def test_monotone_property(self, samples):
        ecdf = ECDF(samples)
        grid = sorted(set(samples))
        probs = [ecdf.prob_at(x) for x in grid]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    @given(st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=100),
           st.floats(0.01, 1.0))
    @settings(max_examples=60)
    def test_quantile_inverse_property(self, samples, p):
        ecdf = ECDF(samples)
        assert ecdf.prob_at(ecdf.quantile(p)) >= p

    def test_render(self):
        text = render_cdf(ECDF([60, 120]), [MINUTE, 2 * MINUTE])
        assert "1m" in text and "2m" in text

    def test_cdf_series(self):
        series = cdf_series({"a": [1, 2], "b": [3]}, [2])
        assert series["a"] == [(2, 1.0)]
        assert series["b"] == [(2, 0.0)]


class TestFormatDuration:
    @pytest.mark.parametrize("seconds,expected", [
        (30, "30s"), (MINUTE, "1m"), (45 * MINUTE, "45m"),
        (HOUR, "1h"), (90 * MINUTE, "1.5h"), (DAY, "1d"), (2 * DAY, "2d"),
    ])
    def test_labels(self, seconds, expected):
        assert format_duration(seconds) == expected


class TestTables:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("bbbb", 22)
        text = table.render()
        assert "T" in text and "bbbb" in text

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ConfigError):
            table.add_row(1)

    def test_comparison_tolerances(self):
        assert Comparison("m", 0.5, 0.55, abs_tol=0.1).within_tolerance
        assert not Comparison("m", 0.5, 0.9, abs_tol=0.1).within_tolerance
        assert Comparison("m", 100, 110, rel_tol=0.2).within_tolerance
        assert Comparison("m", 0, 0.1, rel_tol=0.25).within_tolerance
        assert Comparison("m", 100, 110).ratio == pytest.approx(1.1)

    def test_experiment_report_rendering(self):
        report = ExperimentReport("E1", "demo")
        report.compare("x", 1.0, 1.05, rel_tol=0.1)
        text = report.render()
        assert "E1" in text and "1/1 metrics" in text
        assert report.all_within_tolerance

    def test_share_table_folds_others(self):
        table = share_table("T", ["n", "d", "%"],
                            [(f"p{i}", 10 - i) for i in range(8)],
                            total=52, top=3)
        text = table.render()
        assert "Others" in text and "Total" in text


class TestAnalyses:
    def test_volume_analysis_consistency(self, small_world, small_result):
        volumes = VolumeAnalysis.from_result(small_world, small_result)
        cc = small_world.cctld_tld
        non_cc_candidates = sum(
            1 for c in small_result.candidates.values() if c.tld != cc)
        assert volumes.detected_total() == non_cc_candidates
        assert 0 < volumes.coverage() < 1

    def test_volume_reports_render(self, small_world, small_result):
        volumes = VolumeAnalysis.from_result(small_world, small_result)
        assert "Table 1" in volumes.table1_report().render()
        assert "Table 2" in volumes.table2_report().render()

    def test_detection_analysis(self, small_world, small_result):
        detection = DetectionAnalysis.from_result(small_world, small_result)
        assert not detection.overall.is_empty
        assert 0.9 < detection.ns_kept_24h + detection.ns_changed_24h <= 1.0
        assert "com" in detection.per_tld

    def test_detection_com_faster_than_slow_tlds(self, small_world,
                                                 small_result):
        detection = DetectionAnalysis.from_result(small_world, small_result)
        slow = [t for t in detection.per_tld if t not in ("com", "net")]
        if slow:
            com_fast = detection.per_tld["com"].prob_at(10 * MINUTE)
            slow_avg = sum(detection.per_tld[t].prob_at(10 * MINUTE)
                           for t in slow) / len(slow)
            assert com_fast > slow_avg

    def test_lifetime_analysis(self, small_world, small_result):
        lifetimes = LifetimeAnalysis.from_result(small_world, small_result)
        assert not lifetimes.measured.is_empty
        # All measured lifetimes under ~25h (transient by construction).
        assert lifetimes.measured.max() < 25 * HOUR

    def test_infrastructure_counts_bounded(self, small_world, small_result):
        infra = InfrastructureAnalysis.from_result(small_world, small_result)
        assert sum(infra.registrar_counts.values()) <= infra.total
        assert sum(infra.ns_sld_counts.values()) <= infra.total
        assert infra.total > 0

    def test_infrastructure_cloudflare_prominent_dns(self, small_world,
                                                     small_result):
        """Cloudflare must rank among the top DNS hosts of transients.

        At this tiny test scale campaign clustering adds variance, so we
        assert top-3 membership; the bench at 1/200 pins the exact
        Table 4 shares.
        """
        infra = InfrastructureAnalysis.from_result(small_world, small_result)
        if infra.ns_sld_counts:
            top3 = sorted(infra.ns_sld_counts,
                          key=infra.ns_sld_counts.get, reverse=True)[:3]
            assert "cloudflare.com" in top3

    def test_blocklist_analysis_buckets_sum(self, small_world, small_result):
        analysis = BlocklistAnalysis.from_result(small_world, small_result)
        for timing in (analysis.early_removed, analysis.transient):
            assert (timing.before_registration + timing.registration_day
                    + timing.while_active + timing.after_deletion
                    == timing.flagged)
            assert timing.flagged <= timing.total

    def test_flag_timing_shares(self):
        timing = FlagTiming(total=100, flagged=10, after_deletion=9,
                            registration_day=1)
        assert timing.flagged_share == 0.1
        assert timing.share_of_flagged("after_deletion") == 0.9

    def test_rdap_failure_report(self, small_world, small_result):
        report = rdap_failure_report(small_world, small_result)
        assert report.comparisons
        rates = {c.metric: c.measured for c in report.comparisons}
        assert rates["RDAP failure rate (transient candidates)"] > \
            rates["RDAP failure rate (all NRDs)"]

    def test_nod_comparison_sets(self, small_world, small_result):
        nod = NODComparison.from_result(small_world, small_result)
        assert nod.ours_day or nod.nod_day
        assert nod.transient_union >= nod.ours_transient

    def test_cctld_comparison(self, small_world, small_result):
        cc = CCTLDComparison.from_result(small_world, small_result)
        assert cc.registry_view["deleted_under_24h"] > 0
        assert 0 <= cc.detection_rate <= 1.2

    def test_full_report_runs(self, small_world, small_result):
        reports = full_report(small_world, small_result)
        assert len(reports) == 12
        text = render_reports(reports)
        assert "overall:" in text
        assert "Table 5" in text

    def test_majority_of_metrics_hold_at_test_scale(self, small_world,
                                                    small_result):
        reports = full_report(small_world, small_result)
        ok = sum(r.holding()[0] for r in reports)
        total = sum(r.holding()[1] for r in reports)
        # Small test scale is noisy; the bench scale asserts tighter.
        assert ok / total > 0.7
