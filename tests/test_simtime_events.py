"""Tests for the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.simtime.clock import SimClock
from repro.simtime.events import EventLoop


@pytest.fixture
def loop():
    return EventLoop(SimClock(0))


class TestScheduling:
    def test_events_run_in_time_order(self, loop):
        order = []
        loop.call_at(30, lambda ts: order.append(("b", ts)))
        loop.call_at(10, lambda ts: order.append(("a", ts)))
        loop.call_at(20, lambda ts: order.append(("m", ts)))
        loop.run()
        assert order == [("a", 10), ("m", 20), ("b", 30)]

    def test_same_instant_preserves_insertion_order(self, loop):
        order = []
        for tag in "abc":
            loop.call_at(5, lambda ts, tag=tag: order.append(tag))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_with_events(self, loop):
        loop.call_at(42, lambda ts: None)
        loop.run()
        assert loop.now == 42

    def test_rejects_past_events(self, loop):
        loop.clock.advance_to(100)
        with pytest.raises(SimulationError):
            loop.call_at(99, lambda ts: None)

    def test_call_after(self, loop):
        fired = []
        loop.clock.advance_to(50)
        loop.call_after(10, fired.append)
        loop.run()
        assert fired == [60]

    def test_cancel(self, loop):
        fired = []
        handle = loop.call_at(10, fired.append)
        handle.cancel()
        assert handle.cancelled
        loop.run()
        assert fired == []

    def test_events_can_schedule_events(self, loop):
        fired = []

        def first(ts):
            loop.call_at(ts + 5, fired.append)

        loop.call_at(10, first)
        loop.run()
        assert fired == [15]

    def test_events_run_counter(self, loop):
        for i in range(5):
            loop.call_at(i, lambda ts: None)
        loop.run()
        assert loop.events_run == 5


class TestRunUntil:
    def test_runs_strictly_before(self, loop):
        fired = []
        loop.call_at(10, fired.append)
        loop.call_at(20, fired.append)
        executed = loop.run_until(20)
        assert executed == 1
        assert fired == [10]
        assert loop.now == 20

    def test_remaining_events_still_pending(self, loop):
        fired = []
        loop.call_at(10, fired.append)
        loop.call_at(30, fired.append)
        loop.run_until(20)
        loop.run()
        assert fired == [10, 30]

    def test_peek(self, loop):
        assert loop.peek() is None
        loop.call_at(10, lambda ts: None)
        assert loop.peek() == 10

    def test_peek_skips_cancelled(self, loop):
        handle = loop.call_at(10, lambda ts: None)
        loop.call_at(20, lambda ts: None)
        handle.cancel()
        assert loop.peek() == 20

    def test_run_guard_against_runaway(self, loop):
        def reschedule(ts):
            loop.call_at(ts + 1, reschedule)

        loop.call_at(0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)


class TestPeriodic:
    def test_periodic_fires_on_interval(self, loop):
        fired = []
        loop.every(10, fired.append, first=10, until=45)
        loop.run()
        assert fired == [10, 20, 30, 40]

    def test_periodic_default_first(self, loop):
        fired = []
        loop.clock.advance_to(5)
        loop.every(10, fired.append, until=40)
        loop.run()
        assert fired == [15, 25, 35]

    def test_stop(self, loop):
        fired = []
        task = loop.every(10, fired.append, first=10)

        def stopper(ts):
            task.stop()

        loop.call_at(25, stopper)
        loop.run(max_events=100)
        assert fired == [10, 20]

    def test_rejects_nonpositive_interval(self, loop):
        with pytest.raises(SimulationError):
            loop.every(0, lambda ts: None)

    def test_zone_tick_shape(self, loop):
        """60-second registry provisioning: the motivating use."""
        serials = []
        loop.every(60, lambda ts: serials.append(ts), first=0, until=300)
        loop.run()
        assert serials == [0, 60, 120, 180, 240]
