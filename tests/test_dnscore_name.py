"""Tests for domain-name parsing and hierarchy operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore import name as dnsname
from repro.errors import DomainNameError


class TestNormalize:
    def test_lowercases(self):
        assert dnsname.normalize("ExAmPle.COM") == "example.com"

    def test_strips_trailing_dot(self):
        assert dnsname.normalize("example.com.") == "example.com"

    def test_root_is_empty(self):
        assert dnsname.normalize(".") == ""
        assert dnsname.normalize("") == ""

    @pytest.mark.parametrize("bad", [
        "-leading.com", "trailing-.com", "double..dot.com",
        "under_score.com", "spa ce.com", "a" * 64 + ".com",
        "exämple.com",
    ])
    def test_rejects_invalid(self, bad):
        with pytest.raises(DomainNameError):
            dnsname.normalize(bad)

    def test_rejects_overlong_name(self):
        name = ".".join(["a" * 60] * 5)
        with pytest.raises(DomainNameError):
            dnsname.normalize(name)

    def test_rejects_non_string(self):
        with pytest.raises(DomainNameError):
            dnsname.normalize(42)

    def test_accepts_a_labels(self):
        assert dnsname.normalize("xn--bcher-kva.example") == "xn--bcher-kva.example"

    def test_max_length_label_ok(self):
        assert dnsname.is_valid("a" * 63 + ".com")

    def test_digits_only_label_ok(self):
        assert dnsname.is_valid("123.com")


class TestHierarchy:
    def test_labels(self):
        assert dnsname.labels("a.b.com") == ["a", "b", "com"]
        assert dnsname.labels("") == []

    def test_parent(self):
        assert dnsname.parent("a.b.com") == "b.com"
        assert dnsname.parent("com") == ""

    def test_tld_of(self):
        assert dnsname.tld_of("www.example.shop") == "shop"

    def test_tld_of_root_raises(self):
        with pytest.raises(DomainNameError):
            dnsname.tld_of("")

    def test_is_subdomain(self):
        assert dnsname.is_subdomain("a.example.com", "example.com")
        assert dnsname.is_subdomain("example.com", "example.com")
        assert not dnsname.is_subdomain("example.com", "other.com")
        assert dnsname.is_subdomain("anything.net", "")

    def test_not_subdomain_by_suffix_string(self):
        # 'badexample.com' is NOT under 'example.com'.
        assert not dnsname.is_subdomain("badexample.com", "example.com")

    def test_strip_wildcard(self):
        assert dnsname.strip_wildcard("*.example.com") == "example.com"
        assert dnsname.strip_wildcard("www.example.com") == "www.example.com"

    def test_ancestors(self):
        assert list(dnsname.ancestors("a.b.example.com")) == [
            "b.example.com", "example.com", "com"]

    def test_join(self):
        assert dnsname.join("www", "example.com") == "www.example.com"

    def test_registrable_guess(self):
        assert dnsname.registrable_guess("deep.sub.example.com") == "example.com"

    def test_registrable_guess_rejects_tld(self):
        with pytest.raises(DomainNameError):
            dnsname.registrable_guess("com")

    def test_split_sld(self):
        assert dnsname.split_sld("www.example.com", "com") == ("example", "com")

    def test_split_sld_wrong_tld(self):
        with pytest.raises(DomainNameError):
            dnsname.split_sld("example.com", "net")

    def test_canonical_order_key(self):
        names = ["b.com", "a.net", "a.com"]
        ordered = sorted(names, key=dnsname.canonical_order_key)
        assert ordered == ["a.com", "b.com", "a.net"]


_LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                 min_size=1, max_size=20)


class TestProperties:
    @given(st.lists(_LABEL, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_normalize_idempotent(self, labels):
        name = ".".join(labels)
        assert dnsname.normalize(dnsname.normalize(name)) == dnsname.normalize(name)

    @given(st.lists(_LABEL, min_size=2, max_size=4))
    @settings(max_examples=100)
    def test_parent_drops_one_label(self, labels):
        name = ".".join(labels)
        assert dnsname.label_count(dnsname.parent(name)) == len(labels) - 1

    @given(st.lists(_LABEL, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_subdomain_of_own_tld(self, labels):
        name = ".".join(labels)
        assert dnsname.is_subdomain(name, dnsname.tld_of(name))
