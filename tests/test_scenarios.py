"""The scenario plugin engine and its matrix of pinned worlds.

Four layers of guarantees:

* registry mechanics — registration, lookup, knob validation, and the
  CLI spec grammar, all under the uniform :class:`ConfigError` contract;
* plan-hook plumbing — :class:`MonthPlanContext` helpers draw only from
  the scenario streams and stay deterministic;
* the scenario matrix — every registered scenario builds at 1/2000 with
  jobs=1 *and* jobs=2, reproduces the fingerprint golden committed in
  ``benchmarks/BENCH_scenarios.json``, and meets its observer
  expectation row (``baseline`` additionally swept across seeds);
* expectations coverage — every registered scenario has an
  expectations row, and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import run_pipeline
from repro.errors import ConfigError
from repro.obs.observers import (
    SCENARIO_EXPECTATIONS,
    check_expectations,
    default_pipeline_suite,
    observe_pipeline_result,
    observe_world,
)
from repro.simtime.clock import DAY
from repro.workload.scenario import (
    ScenarioConfig,
    build_world,
    world_fingerprint,
)
from repro.workload.scenarios import (
    Knob,
    Scenario,
    get_scenario,
    iter_scenarios,
    parse_scenario_spec,
    register_scenario,
    scenario_names,
)

GOLDENS = json.loads(
    (Path(__file__).resolve().parent.parent
     / "benchmarks" / "BENCH_scenarios.json").read_text())


def _matrix_config(name, **overrides):
    """The canonical matrix point the goldens were recorded at."""
    params = dict(seed=GOLDENS["seed"], scale=1.0 / GOLDENS["inv_scale"],
                  include_cctld=False, scenario=name)
    params.update(overrides)
    return ScenarioConfig(**params)


# --------------------------------------------------------------------------
# Registry mechanics
# --------------------------------------------------------------------------

class TestRegistry:

    def test_all_shipped_scenarios_registered(self):
        assert scenario_names() == [
            "baseline", "drop-catch-race", "dynamic-update-hijack",
            "registrar-burst", "slow-zone-registry",
            "ttl-decoupled-updates"]

    def test_iter_matches_names_and_carries_docs(self):
        classes = iter_scenarios()
        assert [cls.name for cls in classes] == scenario_names()
        for cls in classes:
            assert cls.description
            for knob in cls.knobs:
                assert isinstance(knob, Knob) and knob.description

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="registrar-burst"):
            get_scenario("nope")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError, match="burst_day"):
            get_scenario("registrar-burst", {"bogus": 1.0})

    def test_non_numeric_knob_rejected(self):
        with pytest.raises(ConfigError, match="must be a number"):
            get_scenario("registrar-burst", {"burst_day": "soon"})

    def test_knob_overrides_merge_with_defaults(self):
        scenario = get_scenario("registrar-burst", {"burst_mult": 12})
        assert scenario.knob("burst_mult") == 12.0
        assert scenario.knob("burst_day") == 60.0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_scenario
            class Dup(Scenario):
                name = "baseline"

    def test_nameless_class_rejected(self):
        with pytest.raises(ValueError, match="no name"):
            @register_scenario
            class Nameless(Scenario):
                description = "forgot the name"


class TestSpecParsing:

    def test_bare_name(self):
        assert parse_scenario_spec("baseline") == ("baseline", {})

    def test_name_with_knobs(self):
        name, knobs = parse_scenario_spec(
            "registrar-burst:burst_day=30,burst_mult=12")
        assert name == "registrar-burst"
        assert knobs == {"burst_day": 30.0, "burst_mult": 12.0}

    @pytest.mark.parametrize("spec", [
        "", ":burst_day=30", "x:burst_day", "x:=3", "x:a=b"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_scenario_spec(spec)

    def test_config_validates_scenario_eagerly(self):
        # A bad name fails at config construction, before any build work.
        with pytest.raises(ConfigError, match="unknown scenario"):
            ScenarioConfig(seed=1, scale=1 / 5000, scenario="nope")


# --------------------------------------------------------------------------
# The scenario matrix: goldens, jobs proof, observer expectations
# --------------------------------------------------------------------------

@pytest.fixture(scope="module", params=scenario_names())
def matrix_run(request):
    """One scenario built serial + parallel, measured once per module."""
    name = request.param
    serial = build_world(_matrix_config(name))
    parallel = build_world(_matrix_config(name, parallel=2))
    suite = default_pipeline_suite()
    observe_pipeline_result(suite, run_pipeline(serial))
    observe_world(suite, serial)
    return {
        "name": name,
        "fingerprint": world_fingerprint(serial),
        "parallel_fingerprint": world_fingerprint(parallel),
        "suite": suite,
    }


class TestScenarioMatrix:

    def test_fingerprint_matches_committed_golden(self, matrix_run):
        golden = GOLDENS["scenarios"][matrix_run["name"]]["fingerprint"]
        assert matrix_run["fingerprint"] == golden, (
            f"{matrix_run['name']}: scenario sampling was perturbed — "
            "re-record benchmarks/BENCH_scenarios.json and say so in "
            "the PR description")

    def test_jobs1_equals_jobs2(self, matrix_run):
        assert (matrix_run["fingerprint"]
                == matrix_run["parallel_fingerprint"]), matrix_run["name"]

    def test_observer_expectations_met(self, matrix_run):
        problems = check_expectations(matrix_run["suite"],
                                      matrix_run["name"])
        assert problems == []

    def test_goldens_distinct_across_scenarios(self):
        digests = [entry["fingerprint"]
                   for entry in GOLDENS["scenarios"].values()]
        # baseline aside, every scenario must actually change the world.
        assert len(set(digests)) == len(digests)

    @pytest.mark.parametrize("seed", sorted(
        int(s) for s in GOLDENS["baseline_seed_sweep"]))
    def test_baseline_seed_sweep_matches_goldens(self, seed):
        got = world_fingerprint(build_world(_matrix_config(
            "baseline", seed=seed)))
        assert got == GOLDENS["baseline_seed_sweep"][str(seed)]


class TestExpectationsCoverage:

    def test_every_scenario_has_a_row(self):
        assert set(SCENARIO_EXPECTATIONS) == set(scenario_names())

    def test_unknown_scenario_is_a_problem(self):
        suite = default_pipeline_suite()
        assert check_expectations(suite, "nope") == [
            "no observer expectations recorded for 'nope'"]


# --------------------------------------------------------------------------
# Plugin plumbing: knobs reach the build, hooks stay scoped
# --------------------------------------------------------------------------

class TestPluginPlumbing:

    def test_knob_override_changes_the_world(self):
        default = world_fingerprint(build_world(_matrix_config(
            "registrar-burst", tlds=["com", "xyz"])))
        moved = world_fingerprint(build_world(_matrix_config(
            "registrar-burst", tlds=["com", "xyz"],
            scenario_knobs={"burst_day": 30.0})))
        assert default != moved

    def test_configure_hook_reaches_the_config(self):
        # slow-zone-registry rewrites snapshot_interval before the build.
        world = build_world(_matrix_config("slow-zone-registry",
                                           tlds=["com"]))
        assert world.config.snapshot_interval == 2 * DAY

    def test_registrar_burst_adds_volume_on_the_day(self):
        base = build_world(_matrix_config(None, tlds=["com"]))
        burst = build_world(_matrix_config("registrar-burst",
                                           tlds=["com"]))
        extra = (burst.registries.total_registrations()
                 - base.registries.total_registrations())
        assert extra > 0
        day_start = burst.config.window.start + 60 * DAY
        created = [lc.created_at
                   for registry in burst.registries
                   for lc in registry.lifecycles()
                   if day_start <= lc.created_at < day_start + DAY]
        base_day = [lc.created_at
                    for registry in base.registries
                    for lc in registry.lifecycles()
                    if day_start <= lc.created_at < day_start + DAY]
        assert len(created) - len(base_day) == extra

    def test_hijack_adds_ghost_certs_only(self):
        base = build_world(_matrix_config(None, tlds=["com", "xyz"]))
        hijack = build_world(_matrix_config("dynamic-update-hijack",
                                            tlds=["com", "xyz"]))
        assert (hijack.registries.total_registrations()
                == base.registries.total_registrations())
        assert hijack.stats["ghost_certs"] > base.stats["ghost_certs"]

    def test_scenario_ghosts_pin_their_ca(self):
        from repro.workload.calibration import MONTH_KEYS, build_targets
        from repro.workload.namegen import month_scoped
        from repro.workload.scenario import _plan_month_for_tld
        from repro.simtime.rng import StreamBank

        config = _matrix_config("dynamic-update-hijack")
        plugin = config.plugin()
        config = plugin.configure(config)
        targets = build_targets(config.scale)
        targets = plugin.transform_targets(config, targets)
        bank = StreamBank(config.seed)
        month = MONTH_KEYS[-1]  # contains hijack_day=70
        namegen = month_scoped(bank.stream("names", "com", month),
                               MONTH_KEYS.index(month))
        _, ghosts = _plan_month_for_tld(config, targets["com"], month,
                                        bank, namegen)
        scenario_ghosts = [g for g in ghosts if g.ca_index is not None]
        assert scenario_ghosts, "hijack planned no ghosts in its month"

    def test_ttl_storm_only_rewires_plans(self):
        base = build_world(_matrix_config(None, tlds=["com"]))
        storm = build_world(_matrix_config("ttl-decoupled-updates",
                                           tlds=["com"]))
        assert (storm.registries.total_registrations()
                == base.registries.total_registrations())
        assert (storm.certstream.event_count()
                == base.certstream.event_count())
