"""Tests for the Registry: provisioning cadence, holds, ground truth."""

import pytest

from repro.errors import RegistrationError, UnknownDomainError
from repro.registry.lifecycle import RemovalReason
from repro.registry.policy import gtld, policy_for
from repro.registry.registry import Registry, RegistryGroup
from repro.simtime.clock import DAY, HOUR, MINUTE


@pytest.fixture
def registry():
    return Registry(gtld("com", MINUTE))


def register(registry, domain="example.com", created=10_000, **kwargs):
    defaults = dict(ns_hosts=["ns1.h.net", "ns2.h.net"],
                    a_addrs=["192.0.2.1"], registrar="GoDaddy")
    defaults.update(kwargs)
    return registry.register(domain, created, defaults.pop("registrar"),
                             **defaults)


class TestRegister:
    def test_zone_added_at_next_tick(self, registry):
        lc = register(registry, created=10_000)
        assert lc.zone_added_at == registry.policy.next_zone_tick(10_000)

    def test_duplicate_rejected(self, registry):
        register(registry)
        with pytest.raises(RegistrationError):
            register(registry)

    def test_foreign_tld_rejected(self, registry):
        with pytest.raises(RegistrationError):
            register(registry, domain="example.net")

    def test_held_never_published(self, registry):
        lc = register(registry, held=True)
        assert lc.zone_added_at is None
        assert not lc.in_zone_at(10 ** 9)

    def test_delegation_visible_after_tick(self, registry):
        lc = register(registry, created=10_000)
        assert registry.delegation_at("example.com", lc.zone_added_at - 1) is None
        assert registry.delegation_at("example.com", lc.zone_added_at) == frozenset(
            {"ns1.h.net", "ns2.h.net"})

    def test_get_and_find(self, registry):
        register(registry)
        assert registry.get("EXAMPLE.com").domain == "example.com"
        assert registry.find("missing.com") is None
        with pytest.raises(UnknownDomainError):
            registry.get("missing.com")

    def test_len_and_contains(self, registry):
        register(registry)
        assert len(registry) == 1
        assert "example.com" in registry


class TestRemoval:
    def test_zone_drop_at_next_tick(self, registry):
        lc = register(registry, created=10_000)
        removed_at = lc.zone_added_at + 3 * HOUR + 7
        registry.schedule_removal("example.com", removed_at,
                                  RemovalReason.ABUSE)
        assert lc.removed_at == removed_at
        assert lc.zone_removed_at == registry.policy.next_zone_tick(removed_at)
        assert lc.removal_reason is RemovalReason.ABUSE

    def test_removal_before_first_tick_never_publishes(self):
        """Registered and removed inside one provisioning interval —
        the domain never reaches DNS at all."""
        registry = Registry(gtld("slow", 30 * MINUTE, snapshot_offset=0))
        lc = register(registry, domain="flash.slow",
                      created=registry.policy.next_zone_tick(0) + 10)
        registry.schedule_removal("flash.slow", lc.created_at + 60)
        assert lc.zone_added_at is None
        assert registry.delegation_at("flash.slow", lc.created_at + 10**6) is None

    def test_removal_before_creation_rejected(self, registry):
        lc = register(registry, created=10_000)
        with pytest.raises(RegistrationError):
            registry.schedule_removal("example.com", 9_999)


class TestHold:
    def test_place_hold_keeps_registration(self, registry):
        lc = register(registry, created=10_000)
        hold_at = lc.zone_added_at + DAY
        registry.place_hold("example.com", hold_at)
        assert lc.held
        assert lc.removed_at is None            # RDAP object survives
        assert not lc.in_zone_at(hold_at + HOUR + MINUTE)

    def test_hold_before_first_tick(self, registry):
        lc = register(registry, created=10_000)
        registry.place_hold("example.com", 10_001)
        assert lc.zone_added_at is None or not lc.in_zone_at(10 ** 9)


class TestNSChange:
    def test_change_applies_at_tick(self, registry):
        lc = register(registry, created=10_000)
        change_at = lc.zone_added_at + HOUR
        registry.change_nameservers("example.com", change_at,
                                    ["ns1.new.net"], dns_provider="New")
        effective = registry.policy.next_zone_tick(change_at)
        assert lc.nameservers_at(effective - 1) == frozenset(
            {"ns1.h.net", "ns2.h.net"})
        assert lc.nameservers_at(effective) == frozenset({"ns1.new.net"})
        assert lc.dns_provider == "New"

    def test_change_on_held_domain_rejected(self, registry):
        register(registry, held=True)
        with pytest.raises(RegistrationError):
            registry.change_nameservers("example.com", 20_000, ["ns1.x.net"])


class TestSerial:
    def test_serial_counts_dirty_ticks(self, registry):
        t0 = 10_000
        register(registry, domain="a.com", created=t0)
        register(registry, domain="b.com", created=t0 + 5)  # same tick
        register(registry, domain="c.com", created=t0 + 10 * MINUTE)
        last_tick = registry.get("c.com").zone_added_at
        assert registry.serial_at(t0 - 1) == 0
        assert registry.serial_at(last_tick) == 2

    def test_serial_monotone(self, registry):
        for i in range(5):
            register(registry, domain=f"d{i}.com", created=10_000 + i * 600)
        serials = [registry.serial_at(ts) for ts in range(9_000, 14_000, 100)]
        assert serials == sorted(serials)

    def test_authority_view(self, registry):
        lc = register(registry, created=10_000)
        auth = registry.authority()
        from repro.dnscore.message import Query
        from repro.dnscore.records import RRType
        response = auth.lookup(Query("example.com", RRType.NS),
                               lc.zone_added_at)
        assert response.exists


class TestGroundTruth:
    def test_registrations_in(self, registry):
        register(registry, domain="in.com", created=10_000)
        register(registry, domain="out.com", created=100_000)
        found = registry.registrations_in(0, 50_000)
        assert [lc.domain for lc in found] == ["in.com"]

    def test_deleted_under(self, registry):
        lc = register(registry, domain="fast.com", created=10_000)
        registry.schedule_removal("fast.com", 10_000 + 3 * HOUR)
        register(registry, domain="slow.com", created=10_000)
        registry.schedule_removal("slow.com", 10_000 + 3 * DAY)
        under = registry.deleted_under(DAY, 0, 50_000)
        assert [lc.domain for lc in under] == ["fast.com"]

    def test_never_published(self, registry):
        register(registry, domain="held.com", created=10_000, held=True)
        register(registry, domain="live.com", created=10_000)
        assert [lc.domain for lc in registry.never_published(0, 50_000)] == [
            "held.com"]


class TestZoneVersion:
    def test_zone_version_contents(self, registry):
        lc = register(registry, created=10_000)
        version = registry.zone_version_at(lc.zone_added_at)
        assert "example.com" in version
        assert version.serial == registry.serial_at(lc.zone_added_at)

    def test_delegated_domains_at(self, registry):
        lc = register(registry, created=10_000)
        registry.schedule_removal("example.com", lc.zone_added_at + HOUR)
        removed_tick = registry.get("example.com").zone_removed_at
        assert registry.delegated_domains_at(lc.zone_added_at) == {"example.com"}
        assert registry.delegated_domains_at(removed_tick) == set()


class TestRegistryGroup:
    def test_routing(self):
        group = RegistryGroup([Registry(policy_for("com")),
                               Registry(policy_for("net"))])
        register(group.get("com"), domain="a.com")
        assert group.for_domain("x.a.com").tld == "com"
        assert group.find_lifecycle("a.com") is not None
        assert group.find_lifecycle("a.net") is None
        assert group.find_lifecycle("a.unknowntld") is None

    def test_tlds_sorted(self):
        group = RegistryGroup([Registry(policy_for("net")),
                               Registry(policy_for("com"))])
        assert group.tlds() == ["com", "net"]

    def test_total_registrations(self):
        group = RegistryGroup([Registry(policy_for("com"))])
        register(group.get("com"), domain="a.com")
        register(group.get("com"), domain="b.com")
        assert group.total_registrations() == 2

    def test_unknown_tld_raises(self):
        with pytest.raises(UnknownDomainError):
            RegistryGroup([]).get("com")
