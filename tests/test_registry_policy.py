"""Tests for TLD policies and zone-tick arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.registry.policy import (
    DEFAULT_POLICIES,
    TLDPolicy,
    cctld,
    gtld,
    policy_for,
)
from repro.simtime.clock import DAY, HOUR, MINUTE


class TestDefaults:
    def test_verisign_cadence(self):
        assert policy_for("com").zone_update_interval == MINUTE
        assert policy_for("net").zone_update_interval == MINUTE

    def test_other_gtlds_15_to_30_minutes(self):
        for tld in ("xyz", "shop", "online", "top", "site", "store"):
            interval = policy_for(tld).zone_update_interval
            assert 15 * MINUTE <= interval <= 30 * MINUTE

    def test_cctlds_not_in_czds(self):
        assert not policy_for("nl").czds_participant
        assert policy_for("com").czds_participant

    def test_unknown_tld(self):
        with pytest.raises(ConfigError):
            policy_for("doesnotexist")

    def test_all_paper_tlds_present(self):
        for tld in ("com", "xyz", "shop", "online", "bond", "top", "net",
                    "org", "site", "store", "fun", "nl"):
            assert tld in DEFAULT_POLICIES


class TestValidation:
    def test_rejects_zero_interval(self):
        with pytest.raises(ConfigError):
            TLDPolicy(tld="x", zone_update_interval=0)

    def test_rejects_bad_offset(self):
        with pytest.raises(ConfigError):
            TLDPolicy(tld="x", zone_update_interval=60, snapshot_offset=DAY)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            TLDPolicy(tld="x", zone_update_interval=60,
                      late_publication_prob=1.5)


class TestTickArithmetic:
    def test_next_tick_at_or_after(self):
        policy = policy_for("com")
        for ts in (0, 1, 59, 60, 61, 12345):
            tick = policy.next_zone_tick(ts)
            assert tick >= ts
            assert tick - ts < policy.zone_update_interval or tick == ts

    def test_tick_on_boundary_is_identity(self):
        policy = policy_for("com")
        tick = policy.next_zone_tick(1000)
        assert policy.next_zone_tick(tick) == tick

    def test_ticks_are_grid_aligned(self):
        policy = policy_for("com")
        a = policy.next_zone_tick(5000)
        b = policy.next_zone_tick(a + 1)
        assert b - a == policy.zone_update_interval

    def test_phase_differs_across_tlds(self):
        phases = {policy_for(t).tick_phase() for t in ("xyz", "shop", "online",
                                                       "top", "site")}
        assert len(phases) > 1  # registries don't tick in lockstep

    def test_tick_index_monotone(self):
        policy = policy_for("xyz")
        indices = [policy.tick_index(ts) for ts in range(0, 7200, 600)]
        assert indices == sorted(indices)

    def test_tick_index_counts_intervals(self):
        policy = gtld("zz", 600, snapshot_offset=0)
        base = policy.next_zone_tick(10_000)
        assert policy.tick_index(base + 1800) - policy.tick_index(base) == 3

    def test_registration_visible_next_tick(self):
        """A domain registered mid-interval waits for the next run —
        the delay Figure 1 attributes to zone cadence."""
        policy = policy_for("xyz")
        registered = policy.next_zone_tick(0) + 10
        visible = policy.next_zone_tick(registered)
        assert visible - registered == policy.zone_update_interval - 10

    def test_snapshot_capture_time(self):
        policy = policy_for("com")
        assert (policy.snapshot_capture_time(DAY)
                == DAY + policy.snapshot_offset)

    def test_cctld_factory(self):
        policy = cctld("zz")
        assert not policy.czds_participant
