"""Tests for the streaming (event-driven) pipeline runner."""

import pytest

from repro.core.live import StreamingPipeline
from repro.core.pipeline import PipelineConfig, run_pipeline


@pytest.fixture(scope="module")
def streaming_result(tiny_world):
    return StreamingPipeline(tiny_world).run()


@pytest.fixture(scope="module")
def batch_result(tiny_world):
    return run_pipeline(tiny_world)


class TestStreamingEquivalence:
    """The live runner must observe exactly what the batch runner does."""

    def test_same_candidates(self, streaming_result, batch_result):
        assert set(streaming_result.candidates) == set(batch_result.candidates)
        for domain, candidate in streaming_result.candidates.items():
            assert candidate == batch_result.candidates[domain]

    def test_same_rdap_outcomes(self, streaming_result, batch_result):
        assert set(streaming_result.rdap) == set(batch_result.rdap)
        for domain in streaming_result.rdap:
            a = streaming_result.rdap[domain]
            b = batch_result.rdap[domain]
            assert (a.ok, a.failure) == (b.ok, b.failure), domain
            if a.ok:
                assert a.record.created_at == b.record.created_at

    def test_same_transient_sets(self, streaming_result, batch_result):
        assert (streaming_result.transient_candidates
                == batch_result.transient_candidates)
        assert (streaming_result.confirmed_transients
                == batch_result.confirmed_transients)

    def test_same_monitor_reports(self, streaming_result, batch_result):
        for domain in list(streaming_result.monitors)[:100]:
            assert (streaming_result.monitors[domain]
                    == batch_result.monitors[domain])


class TestStreamingBehaviour:
    def test_events_flow_through_loop(self, streaming_result):
        # One loop event per certstream message plus one per RDAP fetch.
        assert streaming_result.stats["events_executed"] >= (
            streaming_result.stats["certstream_events"]
            + streaming_result.stats["rdap_queries"])

    def test_rdap_fires_after_detection(self, streaming_result):
        for domain, result in streaming_result.rdap.items():
            candidate = streaming_result.candidates[domain]
            assert result.queried_at >= candidate.ct_seen_at

    def test_observers_see_detections_in_time_order(self, tiny_world):
        seen = []
        pipeline = StreamingPipeline(tiny_world,
                                     PipelineConfig(run_monitor=False))
        pipeline.on_candidate.append(
            lambda candidate, now: seen.append(now))
        result = pipeline.run()
        assert len(seen) == len(result.candidates)
        assert seen == sorted(seen)

    def test_feed_matches_candidates(self, tiny_world):
        pipeline = StreamingPipeline(tiny_world,
                                     PipelineConfig(run_monitor=False))
        result = pipeline.run()
        assert pipeline.feed.domains == set(result.candidates)
