"""Tests for the feed-distribution subsystem (repro.serve)."""

import json

import pytest

from repro.bus.broker import Broker, TOPIC_FEED
from repro.core.feed import FeedRecord, PublicFeed
from repro.core.pipeline import DarkDNSPipeline
from repro.core.records import Candidate
from repro.errors import (
    EvictedClientError,
    OffsetError,
    ServeError,
    UnknownClientError,
)
from repro.serve import (
    FanoutDispatcher,
    FeedServer,
    FeedServerConfig,
    FilterSpec,
    RateLimiter,
    SegmentedLog,
    SubscriptionManager,
    TierPolicy,
    TokenBucket,
)
from repro.workload.scenario import ScenarioConfig, build_world


def record(i=0, domain=None, tld="com", seen_at=None, source="ct"):
    return FeedRecord(domain=domain or f"d{i}.{tld}", tld=tld,
                      seen_at=seen_at if seen_at is not None else 1000 + i,
                      source=source)


# --------------------------------------------------------------------------
# Segmented log
# --------------------------------------------------------------------------

class TestSegmentedLog:
    def test_append_assigns_consecutive_offsets(self):
        log = SegmentedLog(max_segment_records=8)
        offsets = [log.append(record(i)) for i in range(20)]
        assert offsets == list(range(20))
        assert log.end_offset == 20

    def test_rolls_on_record_count(self):
        log = SegmentedLog(max_segment_records=5)
        for i in range(12):
            log.append(record(i))
        stats = log.stats()
        assert stats["segments"] == 3
        assert stats["sealed_segments"] == 2

    def test_rolls_on_time_span(self):
        log = SegmentedLog(max_segment_records=1000, max_segment_span=100)
        for i in range(5):
            log.append(record(i, seen_at=1000 + i * 60))
        # 60-second spacing with a 100-second span: ~2 records/segment.
        assert log.stats()["segments"] >= 2

    def test_read_spans_segments(self):
        log = SegmentedLog(max_segment_records=4)
        for i in range(10):
            log.append(record(i))
        got = log.read(2, max_records=6)
        assert [r.domain for r in got] == [f"d{i}.com" for i in range(2, 8)]

    def test_read_rejects_bad_offsets(self):
        log = SegmentedLog()
        with pytest.raises(OffsetError):
            log.read(-1)

    def test_replay_since_uses_time_index(self):
        log = SegmentedLog(max_segment_records=4)
        for i in range(12):
            log.append(record(i, seen_at=1000 + i * 10))
        got = log.replay_since(1060)
        assert all(r.seen_at >= 1060 for r in got)
        assert len(got) == 6

    def test_replay_since_with_out_of_order_records(self):
        log = SegmentedLog(max_segment_records=4)
        log.append(record(0, seen_at=2000))
        log.append(record(1, seen_at=1500))  # older than its neighbour
        log.append(record(2, seen_at=2100))
        assert {r.seen_at for r in log.replay_since(1500)} == {2000, 1500,
                                                               2100}

    def test_compaction_keeps_newest_per_domain(self):
        log = SegmentedLog(max_segment_records=4)
        for ts in (1000, 2000, 3000):
            log.append(record(domain="dup.com", seen_at=ts))
            log.append(record(domain=f"uniq{ts}.com", seen_at=ts))
        log.roll()
        dropped = log.compact()
        assert dropped == 2  # two superseded dup.com records
        dups = [r for r in log.iter_records() if r.domain == "dup.com"]
        assert len(dups) == 1 and dups[0].seen_at == 3000

    def test_compaction_preserves_appendability(self):
        log = SegmentedLog(max_segment_records=4)
        for i in range(10):
            log.append(record(domain="same.com", seen_at=1000 + i))
        log.roll()
        log.compact()
        offset = log.append(record(domain="new.com", seen_at=5000))
        assert offset == log.end_offset - 1
        assert log.read(log.start_offset, 100)[-1].domain == "new.com"

    def test_persistence_round_trip(self, tmp_path):
        log = SegmentedLog(max_segment_records=4, directory=tmp_path)
        for i in range(10):
            log.append(record(i))
        log.flush()
        loaded = SegmentedLog.load(tmp_path, max_segment_records=4)
        assert [r.domain for r in loaded.iter_records()] == \
            [r.domain for r in log.iter_records()]
        assert loaded.end_offset == log.end_offset

    def test_invalid_config_rejected(self):
        with pytest.raises(ServeError):
            SegmentedLog(max_segment_records=0)
        with pytest.raises(ServeError):
            SegmentedLog(max_segment_span=-5)


# --------------------------------------------------------------------------
# Filters and subscriptions
# --------------------------------------------------------------------------

class TestFilterSpec:
    def test_empty_spec_matches_everything(self):
        pred = FilterSpec().compile()
        assert pred(record()) and pred(record(tld="xyz", source="zone"))

    def test_tld_filter(self):
        pred = FilterSpec(tlds=frozenset({"com", "net"})).compile()
        assert pred(record(tld="com"))
        assert not pred(record(tld="xyz"))

    def test_source_filter(self):
        pred = FilterSpec(sources=frozenset({"zone"})).compile()
        assert pred(record(source="zone"))
        assert not pred(record(source="ct"))

    def test_glob_filter(self):
        pred = FilterSpec(domain_glob="*shop*").compile()
        assert pred(record(domain="myshop.com"))
        assert not pred(record(domain="bank.com"))

    def test_since_filter(self):
        pred = FilterSpec(since=1500).compile()
        assert pred(record(seen_at=1500))
        assert not pred(record(seen_at=1499))

    def test_combined_filter(self):
        spec = FilterSpec(tlds=frozenset({"com"}), domain_glob="pay-*",
                          since=1000)
        pred = spec.compile()
        assert pred(record(domain="pay-fast.com", tld="com", seen_at=2000))
        assert not pred(record(domain="pay-fast.xyz", tld="xyz",
                               seen_at=2000))

    def test_parse_round_trip(self):
        spec = FilterSpec.parse("tld=com, xyz; glob=*shop*; since=42")
        assert spec.tlds == frozenset({"com", "xyz"})
        assert spec.domain_glob == "*shop*"
        assert spec.since == 42
        assert FilterSpec.parse("") == FilterSpec()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ServeError):
            FilterSpec.parse("nonsense")
        with pytest.raises(ServeError):
            FilterSpec.parse("colour=blue")
        with pytest.raises(ServeError):
            FilterSpec.parse("since=yesterday")


class TestSubscriptionManager:
    def test_tld_index_routes_matches(self):
        manager = SubscriptionManager()
        manager.subscribe("com-only", FilterSpec(tlds=frozenset({"com"})))
        manager.subscribe("xyz-only", FilterSpec(tlds=frozenset({"xyz"})))
        manager.subscribe("all", FilterSpec())
        hits = {s.client_id for s in manager.match(record(tld="com"))}
        assert hits == {"com-only", "all"}

    def test_duplicate_and_unknown_clients(self):
        manager = SubscriptionManager()
        manager.subscribe("a", FilterSpec())
        with pytest.raises(ServeError):
            manager.subscribe("a", FilterSpec())
        with pytest.raises(UnknownClientError):
            manager.unsubscribe("ghost")

    def test_unsubscribe_cleans_index(self):
        manager = SubscriptionManager()
        manager.subscribe("a", FilterSpec(tlds=frozenset({"com"})))
        manager.unsubscribe("a")
        assert manager.match(record(tld="com")) == []
        assert len(manager) == 0

    def test_unknown_tier_rejected(self):
        manager = SubscriptionManager()
        with pytest.raises(ServeError):
            manager.subscribe("a", FilterSpec(), tier="platinum")


# --------------------------------------------------------------------------
# Fan-out, backpressure, eviction
# --------------------------------------------------------------------------

class TestFanout:
    def test_sharding_is_stable_and_total(self):
        dispatcher = FanoutDispatcher(shards=4)
        ids = [f"c{i}" for i in range(40)]
        for client_id in ids:
            dispatcher.add_client(client_id)
        assert sorted(dispatcher.active_clients()) == sorted(ids)
        assert sum(len(s) for s in dispatcher.shards) == 40
        # every shard should get some clients at this population
        assert all(len(s) > 0 for s in dispatcher.shards)

    def test_dispatch_and_poll(self):
        dispatcher = FanoutDispatcher(shards=2)
        dispatcher.add_client("a")
        accepted = dispatcher.dispatch(record(), ["a"], now=2000)
        assert accepted == 1
        got = dispatcher.poll("a", now=2000)
        assert len(got) == 1
        assert dispatcher.metrics.delivered.value == 1

    def test_queue_bound_drops_oldest(self):
        dispatcher = FanoutDispatcher(shards=1, max_queue_depth=3,
                                      evict_after_drops=1000)
        dispatcher.add_client("slow")
        for i in range(5):
            dispatcher.dispatch(record(i), ["slow"], now=2000)
        got = dispatcher.poll("slow", now=2000, max_records=10)
        # oldest two were dropped; the three newest survive
        assert [r.domain for r in got] == ["d2.com", "d3.com", "d4.com"]
        assert dispatcher.metrics.dropped_queue_full.value == 2

    def test_slow_consumer_eviction(self):
        dispatcher = FanoutDispatcher(shards=1, max_queue_depth=2,
                                      evict_after_drops=4)
        dispatcher.add_client("dead")
        for i in range(10):
            dispatcher.dispatch(record(i), ["dead"], now=2000)
        assert dispatcher.is_evicted("dead")
        assert dispatcher.metrics.evicted_clients.value == 1
        with pytest.raises(EvictedClientError):
            dispatcher.poll("dead", now=2000)

    def test_draining_resets_drop_streak(self):
        dispatcher = FanoutDispatcher(shards=1, max_queue_depth=2,
                                      evict_after_drops=4)
        dispatcher.add_client("spiky")
        for burst in range(5):
            for i in range(5):  # 3 drops per burst, under the threshold
                dispatcher.dispatch(record(i), ["spiky"], now=2000)
            dispatcher.poll("spiky", now=2000, max_records=10)
        assert not dispatcher.is_evicted("spiky")

    def test_poll_unknown_client(self):
        with pytest.raises(UnknownClientError):
            FanoutDispatcher().poll("nobody", now=0)

    def test_invalid_shard_count(self):
        with pytest.raises(ServeError):
            FanoutDispatcher(shards=0)


# --------------------------------------------------------------------------
# Rate limiting
# --------------------------------------------------------------------------

class TestRateLimit:
    def test_bucket_spends_and_refills(self):
        bucket = TokenBucket(TierPolicy("t", rate=2.0, burst=10.0), now=0)
        assert bucket.try_spend(0, 10)       # burst available immediately
        assert not bucket.try_spend(0, 1)    # empty
        assert bucket.try_spend(3, 6)        # 3 s * 2/s = 6 tokens
        assert not bucket.try_spend(3, 1)

    def test_burst_is_capped(self):
        bucket = TokenBucket(TierPolicy("t", rate=100.0, burst=5.0), now=0)
        bucket.refill(10_000)
        assert bucket.tokens == 5.0

    def test_limiter_accounts_per_client(self):
        limiter = RateLimiter({"slow": TierPolicy("slow", 1.0, 2.0)})
        limiter.register("a", "slow", now=0)
        assert limiter.allow("a", now=0) and limiter.allow("a", now=0)
        assert not limiter.allow("a", now=0)
        assert limiter.allow("a", now=1)     # one second, one token
        assert limiter.available("a", now=1) == 0.0

    def test_unknown_tier_and_unregistered_client(self):
        limiter = RateLimiter()
        with pytest.raises(ServeError):
            limiter.register("a", "gold")
        assert limiter.allow("stranger", now=0)  # membership not enforced

    def test_invalid_policy(self):
        with pytest.raises(ServeError):
            TierPolicy("bad", rate=0.0, burst=1.0)


# --------------------------------------------------------------------------
# FeedServer facade
# --------------------------------------------------------------------------

class TestFeedServer:
    def feed_broker(self, n=20):
        broker = Broker()
        for i in range(n):
            rec = record(i, tld="com" if i % 2 else "xyz")
            broker.produce(TOPIC_FEED, rec.domain, rec, rec.seen_at)
        return broker

    def test_pump_delivers_filtered(self):
        server = FeedServer(broker=self.feed_broker(20))
        server.subscribe("com-fan", "tld=com")
        server.subscribe("firehose", None, tier="premium")
        assert server.pump() == 20
        assert len(server.poll("com-fan", now=2000)) == 10
        assert len(server.poll("firehose", now=2000)) == 20
        assert server.pump() == 0  # offsets committed: nothing new

    def test_pump_without_broker(self):
        with pytest.raises(ServeError):
            FeedServer().pump()

    def test_backfill_since_on_subscribe(self):
        server = FeedServer(broker=self.feed_broker(20))
        server.pump()
        server.subscribe("late", "tld=com", backfill_since=1010, now=2000)
        got = server.poll("late", now=2000, max_records=100)
        assert got and all(r.seen_at >= 1010 and r.tld == "com"
                           for r in got)

    def test_poll_respects_rate_limit(self):
        server = FeedServer(broker=self.feed_broker(20))
        server.subscribe("tiny", None, tier="free", now=1000)
        server.pump()
        server.limiter._buckets["tiny"].tokens = 3.0
        got = server.poll("tiny", now=1000, max_records=100)
        assert len(got) == 3
        assert server.poll("tiny", now=1000) == []
        assert server.metrics.dropped_rate_limited.value == 1
        assert server.fanout.pending("tiny") == 17  # deferred, not lost

    def test_unsubscribe_stops_delivery(self):
        server = FeedServer(broker=self.feed_broker(4))
        server.subscribe("quitter", None)
        server.unsubscribe("quitter")
        server.pump()
        assert server.metrics.filtered_out.value == 4

    def test_replay_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        lines = [record(i).to_json() for i in range(5)]
        lines.insert(2, "{not json")
        lines.insert(4, json.dumps({"tld": "com", "seen_at": 1}))
        path.write_text("\n".join(lines) + "\n\n", encoding="utf-8")
        server = FeedServer()
        server.subscribe("all", None, tier="premium")
        assert server.replay(path) == 5
        assert server.replay_skipped == 2
        assert len(server.poll("all", now=2000, max_records=10)) == 5

    def test_evicted_client_can_resubscribe(self):
        server = FeedServer(broker=self.feed_broker(0),
                            config=FeedServerConfig(max_queue_depth=2,
                                                    evict_after_drops=3))
        server.subscribe("lazy", None)
        for i in range(10):
            server.ingest(record(i))
        assert server.fanout.is_evicted("lazy")
        assert server.client_count == 0  # subscription retired too
        with pytest.raises(EvictedClientError):
            server.poll("lazy", now=2000)
        server.subscribe("lazy", None)  # fresh start, no error
        server.ingest(record(99))
        assert len(server.poll("lazy", now=2000)) == 1

    def test_custom_tier_policies(self):
        config = FeedServerConfig(tiers={
            "gold": TierPolicy("gold", rate=1.0, burst=2.0)})
        server = FeedServer(config=config)
        server.subscribe("vip", None, tier="gold", now=0)
        with pytest.raises(ServeError):
            server.subscribe("pleb", None, tier="standard", now=0)
        for i in range(4):
            server.ingest(record(i, seen_at=0))
        assert len(server.poll("vip", now=0, max_records=10)) == 2  # burst

    def test_idle_rate_limited_poll_not_counted(self):
        server = FeedServer()
        server.subscribe("idle", None, tier="free", now=0)
        server.limiter._buckets["idle"].tokens = 0.0
        assert server.poll("idle", now=0) == []  # nothing pending
        assert server.metrics.dropped_rate_limited.value == 0
        server.ingest(record(0, seen_at=0))
        assert server.poll("idle", now=0) == []  # one deferred record
        assert server.metrics.dropped_rate_limited.value == 1

    def test_snapshot_shape(self):
        server = FeedServer(broker=self.feed_broker(8))
        server.subscribe("a", None)
        server.pump()
        server.poll("a", now=5000)
        snap = server.snapshot()
        for key in ("published", "delivered", "dropped_queue_full",
                    "delivery_lag", "log", "shards", "clients"):
            assert key in snap
        json.dumps(snap)  # must be JSON-serialisable


# --------------------------------------------------------------------------
# Pipeline integration (serve= hook + live replay)
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serve_world():
    """A private world: the serve tests advance its broker offsets."""
    return build_world(ScenarioConfig(
        seed=13, scale=1 / 5000, tlds=["com", "xyz"], include_cctld=False))


class TestPipelineIntegration:
    def test_serve_hook_pumps_during_run(self, serve_world):
        server = FeedServer(broker=serve_world.broker,
                            config=FeedServerConfig(
                                consumer_group="serve-hook-test",
                                max_queue_depth=100_000))
        server.subscribe("everything", None, tier="premium")
        pipeline = DarkDNSPipeline(serve_world, serve=server)
        pipeline.run()
        assert server.metrics.published.value == len(pipeline.feed)
        got = server.poll("everything", now=serve_world.window.end,
                          max_records=10 ** 6)
        assert len(got) == len(pipeline.feed)

    def test_run_live_serves_all_clients(self, serve_world):
        server = FeedServer(broker=serve_world.broker,
                            config=FeedServerConfig(
                                consumer_group="run-live-test"))
        server.subscribe("com", "tld=com", tier="standard")
        server.subscribe("hose", None, tier="free")
        DarkDNSPipeline(serve_world).run()
        served = server.run_live(poll_interval=3600)
        assert served > 50
        assert server.fanout.pending() == 0
        assert not server.fanout.is_evicted("hose")
        counts = server.fanout.delivered_counts()
        assert counts["hose"] == served
        assert 0 < counts["com"] < served
        assert server.metrics.delivery_lag.count > 0


# --------------------------------------------------------------------------
# PublicFeed JSONL round-trip edge cases (satellite fix)
# --------------------------------------------------------------------------

class TestFeedRoundTrip:
    def candidate(self, domain, seen_at):
        return Candidate(domain=domain, tld=domain.rsplit(".", 1)[1],
                         ct_seen_at=seen_at, cert_serial=1, issuer="CA",
                         log_id="log", reused_validation=False)

    def test_out_of_order_publish_is_sorted_on_load(self, tmp_path):
        feed = PublicFeed()
        feed.publish(self.candidate("late.com", 3000))
        feed.publish(self.candidate("early.com", 1000))
        # NOT finalized before writing: archive is out of order.
        path = tmp_path / "feed.jsonl"
        feed.to_jsonl(path)
        loaded = PublicFeed.from_jsonl(path)
        assert [r.domain for r in loaded] == ["early.com", "late.com"]

    def test_missing_source_defaults_to_ct(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(json.dumps({"domain": "a.com", "tld": "com",
                                    "seen_at": 5}) + "\n", encoding="utf-8")
        loaded = PublicFeed.from_jsonl(path)
        assert next(iter(loaded)).source == "ct"

    def test_blank_and_corrupt_lines_skipped_with_warning(self, tmp_path,
                                                          capsys):
        path = tmp_path / "feed.jsonl"
        good = FeedRecord(domain="ok.com", tld="com", seen_at=9).to_json()
        path.write_text(
            "\n".join(["", good, "garbage", "",
                       json.dumps({"domain": "x.com"}), good]) + "\n",
            encoding="utf-8")
        loaded = PublicFeed.from_jsonl(path)
        # The corruption report flows through the structured log now
        # (logger core.feed, level warning), rendered on stderr.
        err = capsys.readouterr().err
        assert "2 malformed" in err and "warning" in err
        assert len(loaded) == 2
        assert loaded.load_errors == 2

    def test_clean_load_has_no_errors(self, tmp_path):
        feed = PublicFeed()
        feed.publish(self.candidate("a.com", 1))
        path = tmp_path / "feed.jsonl"
        feed.to_jsonl(path)
        loaded = PublicFeed.from_jsonl(path)
        assert loaded.load_errors == 0
        assert loaded.domains == {"a.com"}
